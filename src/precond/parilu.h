// Fixed-point (ParILU-style) computation of ILU factors.
//
// Chow & Patel's fine-grained parallel ILU (the approach of Anzt et al.'s
// ParILUT, cited by the paper as the GPU-native way to build ILU factors):
// instead of the sequential IKJ elimination, every nonzero of the factor is
// updated independently from the fixed-point equations
//     l_ij = (a_ij - sum_{k<j} l_ik u_kj) / u_jj      (i > j)
//     u_ij =  a_ij - sum_{k<i} l_ik u_kj              (i <= j)
// iterated in Jacobi fashion. Each sweep is embarrassingly parallel — no
// wavefronts at all — and a handful of sweeps converges to the exact
// ILU(0) factors. This gives the repository a second, dependence-free way
// to build the preconditioner and an ablation axis (sweeps vs quality).
#pragma once

#include <cmath>
#include <vector>

#include "precond/ilu.h"
#include "sparse/csr.h"

namespace spcg {

struct ParIluOptions {
  int sweeps = 5;
  /// Initial guess: values of A with the unit-L scaling (standard choice).
  bool scale_initial_guess = true;
};

/// Result of the fixed-point factorization, in the same combined-LU layout
/// as ilu0()/iluk() so all downstream machinery applies unchanged.
template <class T>
struct ParIluResult {
  IluResult<T> result;
  double last_update_norm = 0.0;  // max |delta| of the final sweep
};

/// ParILU(0): fixed-point ILU on A's own pattern.
template <class T>
ParIluResult<T> parilu0(const Csr<T>& a, const ParIluOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(opt.sweeps >= 1);
  const index_t n = a.rows;

  ParIluResult<T> out;
  IluResult<T>& r = out.result;
  r.lu = a;
  r.diag_pos.assign(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    const index_t d = a.find(i, i);
    SPCG_CHECK_MSG(d >= 0, "parilu0: row " << i << " has no diagonal");
    r.diag_pos[static_cast<std::size_t>(i)] = d;
  }

  // Initial guess: L-part scaled by the diagonal (unit-L convention).
  if (opt.scale_initial_guess) {
    for (index_t i = 0; i < n; ++i) {
      for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
           p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t j = a.colind[static_cast<std::size_t>(p)];
        if (j < i) {
          const T djj = a.values[static_cast<std::size_t>(
              r.diag_pos[static_cast<std::size_t>(j)])];
          if (djj != T{0}) r.lu.values[static_cast<std::size_t>(p)] /= djj;
        }
      }
    }
  }

  std::vector<T> next(r.lu.values.size());
  for (int sweep = 0; sweep < opt.sweeps; ++sweep) {
    double max_delta = 0.0;
    // Jacobi sweep: all updates read the previous iterate.
    for (index_t i = 0; i < n; ++i) {
      for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
           p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t j = a.colind[static_cast<std::size_t>(p)];
        // Sparse dot of L-row i and U-column j over k < min(i, j):
        // iterate the shorter structure — row i's L-part — and look up
        // u_kj via the row-k pattern.
        T dot{0};
        for (index_t q = a.rowptr[static_cast<std::size_t>(i)];
             q < a.rowptr[static_cast<std::size_t>(i) + 1]; ++q) {
          const index_t k = a.colind[static_cast<std::size_t>(q)];
          if (k >= i || k >= j) break;  // sorted columns
          const index_t ukj = r.lu.find(k, j);
          if (ukj >= 0)
            dot += r.lu.values[static_cast<std::size_t>(q)] *
                   r.lu.values[static_cast<std::size_t>(ukj)];
        }
        T value;
        if (j < i) {
          const T ujj = r.lu.values[static_cast<std::size_t>(
              r.diag_pos[static_cast<std::size_t>(j)])];
          value = (std::abs(ujj) > T{0})
                      ? (a.values[static_cast<std::size_t>(p)] - dot) / ujj
                      : r.lu.values[static_cast<std::size_t>(p)];
        } else {
          value = a.values[static_cast<std::size_t>(p)] - dot;
        }
        next[static_cast<std::size_t>(p)] = value;
        max_delta = std::max(
            max_delta,
            static_cast<double>(std::abs(
                value - r.lu.values[static_cast<std::size_t>(p)])));
      }
    }
    r.lu.values = next;
    out.last_update_norm = max_delta;
  }

  // Guard the pivots like the sequential path does.
  for (index_t i = 0; i < n; ++i) {
    T& pivot = r.lu.values[static_cast<std::size_t>(
        r.diag_pos[static_cast<std::size_t>(i)])];
    if (std::abs(pivot) < T{1e-30}) {
      pivot = (pivot < T{0} ? T{-1e-30} : T{1e-30});
      r.breakdown = true;
    }
  }
  return out;
}

/// Max |difference| between two combined factors on the same pattern.
template <class T>
double factor_difference(const IluResult<T>& a, const IluResult<T>& b) {
  SPCG_CHECK(a.lu.colind == b.lu.colind);
  double d = 0.0;
  for (std::size_t p = 0; p < a.lu.values.size(); ++p)
    d = std::max(d, static_cast<double>(std::abs(a.lu.values[p] -
                                                 b.lu.values[p])));
  return d;
}

}  // namespace spcg
