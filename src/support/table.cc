#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace spcg {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    SPCG_CHECK_MSG(row.size() == header_.size(),
                   "row has " << row.size() << " cells, header has "
                              << header_.size());
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::render_tsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << '\t';
      os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction01, int precision) {
  return fmt(fraction01 * 100.0, precision) + "%";
}

std::string fmt_speedup(double v, int precision) {
  return fmt(v, precision) + "x";
}

std::string render_histogram(const Histogram& h, const std::string& unit,
                             int bar_width) {
  double max_count = 0.0;
  for (double c : h.counts) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const double lo = h.lo + h.bin_width * static_cast<double>(b);
    const double hi = lo + h.bin_width;
    const int bar =
        max_count > 0.0
            ? static_cast<int>(std::lround(h.counts[b] / max_count *
                                           static_cast<double>(bar_width)))
            : 0;
    os << '[' << fmt(lo, 2) << ',' << fmt(hi, 2) << ") "
       << std::string(static_cast<std::size_t>(bar), '#')
       << std::string(static_cast<std::size_t>(bar_width - bar), ' ') << ' '
       << fmt(h.counts[b], 2) << unit << '\n';
  }
  return os.str();
}

}  // namespace spcg
