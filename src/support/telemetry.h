// Lightweight telemetry for long-running components: lock-free counters,
// power-of-two histograms, running-maximum gauges, and a named registry that
// can be snapshotted while other threads keep recording. Used by the runtime
// layer (setup cache, solve service, distributed sessions) to expose
// hit/miss/fallback and communication-volume statistics without perturbing
// the hot path.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace spcg {

/// Monotonic event counter; add() is wait-free and safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Running maximum over recorded values (e.g. peak halo bytes of any solve).
/// update() is lock-free and safe from any thread.
class MaxGauge {
 public:
  void update(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Lock-free histogram with power-of-two buckets: record(v) lands in bucket
/// std::bit_width(v) (0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...), so
/// 65 buckets cover the full uint64 range with no configuration. Tracks
/// count, sum and max alongside the buckets; percentile() answers with the
/// inclusive upper edge of the covering bucket (an upper bound, exact enough
/// for byte/iteration distributions spanning orders of magnitude). Distinct
/// from the dense bench-side spcg::Histogram in support/stats.h, which bins a
/// finished sample over a fixed [lo, hi) range.
class LogHistogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    max_.update(v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_.value(); }
  [[nodiscard]] std::uint64_t bucket(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// Inclusive upper edge of bucket b: the largest value that records there.
  [[nodiscard]] static std::uint64_t bucket_upper_edge(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  /// Upper bound on the p-th percentile (p in [0, 100]; values outside are
  /// clamped): the *inclusive upper edge* of the first bucket whose
  /// cumulative count reaches p% of the total — at least p% of recorded
  /// values are <= the answer, and the answer is a value the covering
  /// bucket could actually contain (never an interpolation). p=0 answers
  /// with the first non-empty bucket's upper edge (the tightest bound this
  /// sketch has on the minimum); p=100 bounds the maximum by its bucket
  /// edge, which may exceed max(). Returns 0 when nothing was recorded.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    const double need = p / 100.0 * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cumulative += bucket(b);
      if (static_cast<double>(cumulative) >= need && cumulative > 0)
        return bucket_upper_edge(b);
    }
    return bucket_upper_edge(kBuckets - 1);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.reset();
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  MaxGauge max_;
};

/// One named counter value captured by a snapshot.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Thread-safe create-on-first-use registry of named counters, max-gauges
/// and log-histograms. References stay valid for the registry's lifetime, so
/// components resolve their instruments once and record lock-free afterwards.
class TelemetryRegistry {
 public:
  /// The counter registered under `name`, creating it at zero if absent.
  Counter& counter(const std::string& name);

  /// The max-gauge registered under `name`, creating it at zero if absent.
  MaxGauge& max_gauge(const std::string& name);

  /// The log-histogram registered under `name`, creating it empty if absent.
  LogHistogram& histogram(const std::string& name);

  /// Every instrument flattened to named samples, sorted by name: counters
  /// as-is, gauges as "<name>.max", histograms as "<name>.count / .sum /
  /// .max / .p50 / .p99" (values read with relaxed ordering).
  [[nodiscard]] std::vector<CounterSample> snapshot() const;

  /// Zero every registered instrument (all stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

/// Render samples as aligned "name  value" lines (for CLIs and logs).
std::string render_telemetry(std::span<const CounterSample> samples);

}  // namespace spcg
