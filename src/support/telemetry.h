// Lightweight telemetry for long-running components: lock-free counters and
// a named-counter registry that can be snapshotted while other threads keep
// incrementing. Used by the runtime layer (setup cache, solve service) to
// expose hit/miss/fallback statistics without perturbing the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace spcg {

/// Monotonic event counter; add() is wait-free and safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// One named counter value captured by a snapshot.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Thread-safe create-on-first-use registry of named counters. Counter
/// references stay valid for the registry's lifetime, so components resolve
/// their counters once and increment lock-free afterwards.
class TelemetryRegistry {
 public:
  /// The counter registered under `name`, creating it at zero if absent.
  Counter& counter(const std::string& name);

  /// All counters, sorted by name (values read with relaxed ordering).
  [[nodiscard]] std::vector<CounterSample> snapshot() const;

  /// Zero every registered counter (counters stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/// Render samples as aligned "name  value" lines (for CLIs and logs).
std::string render_telemetry(std::span<const CounterSample> samples);

}  // namespace spcg
