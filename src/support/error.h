// Error handling for the SPCG library.
//
// All invariant violations throw spcg::Error with a message that carries the
// failing expression and source location. Library code never calls abort();
// callers (tests, benches, solvers over many matrices) are expected to catch
// and continue with the next input.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spcg {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "SPCG_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace spcg

/// Check a precondition; throws spcg::Error when `expr` is false.
#define SPCG_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::spcg::detail::raise_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (0)

/// Check with an explanatory message (streamed, e.g. SPCG_CHECK_MSG(a<b, "a=" << a)).
#define SPCG_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream spcg_check_os_;                                     \
      spcg_check_os_ << msg;                                                 \
      ::spcg::detail::raise_check_failure(#expr, __FILE__, __LINE__,         \
                                          spcg_check_os_.str());             \
    }                                                                        \
  } while (0)
