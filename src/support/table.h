// Plain-text table and histogram rendering for the benchmark harness.
//
// Every bench binary regenerates a table or figure from the paper; these
// helpers keep that output aligned, parseable (TSV block follows each pretty
// table) and diff-friendly.
#pragma once

#include <string>
#include <vector>

#include "support/stats.h"

namespace spcg {

/// Column-aligned table. Add a header once, then rows; render() pads cells.
class TextTable {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Pretty-printed, column-aligned rendering.
  [[nodiscard]] std::string render() const;

  /// Tab-separated rendering (machine readable).
  [[nodiscard]] std::string render_tsv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double v, int precision = 3);

/// Format as a percentage string, e.g. "69.16%".
std::string fmt_percent(double fraction01, int precision = 2);

/// Format as a speedup string, e.g. "1.23x".
std::string fmt_speedup(double v, int precision = 2);

/// Render a histogram as rows of "[lo,hi) <bar> value" lines.
std::string render_histogram(const Histogram& h, const std::string& unit,
                             int bar_width = 40);

}  // namespace spcg
