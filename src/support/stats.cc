#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace spcg {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  SPCG_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    SPCG_CHECK_MSG(x > 0.0, "geometric_mean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  SPCG_CHECK(!xs.empty());
  SPCG_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double fraction_above(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  const auto count = std::count_if(xs.begin(), xs.end(),
                                   [=](double x) { return x > threshold; });
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  SPCG_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Ties i..j share the average of ranks i+1 .. j+1.
    const double avg = 0.5 * static_cast<double>(i + 1 + j + 1);
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  SPCG_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const std::vector<double> rx = average_ranks(xs);
  const std::vector<double> ry = average_ranks(ys);
  return pearson(rx, ry);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  SPCG_CHECK(xs.size() == ys.size());
  LinearFit fit;
  if (xs.size() < 2) return fit;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins, bool as_percent) {
  SPCG_CHECK(bins > 0 && hi > lo);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.bin_width = (hi - lo) / static_cast<double>(bins);
  h.counts.assign(bins, 0.0);
  for (double x : xs) {
    auto bin = static_cast<long>((x - lo) / h.bin_width);
    bin = std::clamp(bin, 0L, static_cast<long>(bins) - 1);
    h.counts[static_cast<std::size_t>(bin)] += 1.0;
  }
  if (as_percent && !xs.empty()) {
    for (double& c : h.counts) c *= 100.0 / static_cast<double>(xs.size());
  }
  return h;
}

}  // namespace spcg
