// Exporters for the observability layer (DESIGN.md §9): turn recorded
// TraceEvents and telemetry snapshots into the two formats serving stacks
// actually consume.
//
//   * chrome_trace_json / write_chrome_trace — Chrome trace_event "JSON
//     array format": one complete event ("ph":"X") per span, timestamps in
//     microseconds. Load the file in chrome://tracing or ui.perfetto.dev to
//     see the solve timeline per thread.
//   * prometheus_text — Prometheus text exposition (version 0.0.4): the
//     flattened telemetry Registry (counters, LogHistograms, MaxGauges) as
//     `<prefix>_<name> <value>` lines plus trace-derived per-phase totals as
//     `<prefix>_phase_seconds_total{category=...,phase=...}`.
//
// is_valid_json is a minimal RFC 8259 scanner used as a self-check by the
// trace tests and the regression harness; it validates structure only (no
// DOM is built).
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <string_view>

#include "support/telemetry.h"
#include "support/trace.h"

namespace spcg {

/// The whole trace as a Chrome trace_event JSON object document:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
std::string chrome_trace_json(std::span<const TraceEvent> events);

/// Stream the same document (large traces skip the intermediate string).
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events);

/// Prometheus text exposition of telemetry samples and optional trace phase
/// totals. Sample names are sanitized ('.' and any other character outside
/// [a-zA-Z0-9_] become '_') and prefixed: "setup_cache.hits" with prefix
/// "spcg" renders as `spcg_setup_cache_hits`. Phase totals render as
/// `<prefix>_phase_seconds_total` / `<prefix>_phase_count_total` with
/// category/phase labels.
std::string prometheus_text(std::span<const CounterSample> samples,
                            std::span<const PhaseTotal> phases = {},
                            std::string_view prefix = "spcg");

/// Escape a string for embedding inside a JSON document (adds the quotes).
std::string json_quote(std::string_view s);

/// Structural JSON validity check (RFC 8259 values; no size limits beyond a
/// nesting cap of 256). Self-check for the exporters above.
bool is_valid_json(std::string_view text);

}  // namespace spcg
