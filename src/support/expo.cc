#include "support/expo.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace spcg {

namespace detail {
// Shared with trace.cc's trace_arg string quoting.
std::string trace_quote_json(std::string_view s);
}  // namespace detail

std::string json_quote(std::string_view s) {
  return detail::trace_quote_json(s);
}

namespace {

/// Microseconds with nanosecond precision, as Chrome's "ts"/"dur" expect.
std::string micros_str(std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

void write_event(std::ostream& os, const TraceEvent& ev) {
  os << "{\"name\":" << json_quote(ev.name) << ",\"cat\":"
     << json_quote(ev.category) << ",\"ph\":\"X\",\"ts\":"
     << micros_str(ev.start_ns) << ",\"dur\":" << micros_str(ev.duration_ns)
     << ",\"pid\":1,\"tid\":" << ev.tid;
  if (!ev.args.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < ev.args.size(); ++i) {
      if (i != 0) os << ",";
      os << json_quote(ev.args[i].key) << ":" << ev.args[i].value;
    }
    os << "}";
  }
  os << "}";
}

std::string sanitize_metric_name(std::string_view prefix,
                                 std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  out.push_back('_');
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus label values escape backslash, quote and newline.
std::string label_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events) {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n";
    write_event(os, events[i]);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(std::span<const TraceEvent> events) {
  std::ostringstream os;
  write_chrome_trace(os, events);
  return os.str();
}

std::string prometheus_text(std::span<const CounterSample> samples,
                            std::span<const PhaseTotal> phases,
                            std::string_view prefix) {
  std::ostringstream os;
  if (!samples.empty()) {
    os << "# Flattened telemetry registry (counters, max-gauges, "
          "log-histogram count/sum/max/p50/p99).\n";
    for (const CounterSample& s : samples)
      os << sanitize_metric_name(prefix, s.name) << " " << s.value << "\n";
  }
  if (!phases.empty()) {
    const std::string seconds =
        sanitize_metric_name(prefix, "phase_seconds_total");
    const std::string count = sanitize_metric_name(prefix, "phase_count_total");
    os << "# HELP " << seconds
       << " Total traced wall-clock per pipeline phase.\n"
       << "# TYPE " << seconds << " counter\n";
    for (const PhaseTotal& p : phases) {
      char val[48];
      std::snprintf(val, sizeof(val), "%.9f", p.total_seconds());
      os << seconds << "{category=\"" << label_escape(p.category)
         << "\",phase=\"" << label_escape(p.name) << "\"} " << val << "\n";
    }
    os << "# HELP " << count << " Traced span count per pipeline phase.\n"
       << "# TYPE " << count << " counter\n";
    for (const PhaseTotal& p : phases)
      os << count << "{category=\"" << label_escape(p.category)
         << "\",phase=\"" << label_escape(p.name) << "\"} " << p.count
         << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal structural JSON scanner (RFC 8259).

namespace {

struct JsonScanner {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (at_end()) return false;
        const char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (at_end() || std::isxdigit(static_cast<unsigned char>(
                                text[pos++])) == 0)
              return false;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
      ++pos;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (at_end()) return false;
    bool ok = false;
    const char c = peek();
    if (c == '{') {
      ++pos;
      skip_ws();
      if (consume('}')) {
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (!consume(':')) break;
          if (!value()) break;
          skip_ws();
          if (consume(',')) continue;
          ok = consume('}');
          break;
        }
      }
    } else if (c == '[') {
      ++pos;
      skip_ws();
      if (consume(']')) {
        ok = true;
      } else {
        for (;;) {
          if (!value()) break;
          skip_ws();
          if (consume(',')) continue;
          ok = consume(']');
          break;
        }
      }
    } else if (c == '"') {
      ok = string();
    } else if (c == 't') {
      ok = literal("true");
    } else if (c == 'f') {
      ok = literal("false");
    } else if (c == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool is_valid_json(std::string_view text) {
  JsonScanner scanner{text};
  if (!scanner.value()) return false;
  scanner.skip_ws();
  return scanner.at_end();
}

}  // namespace spcg
