#include "support/telemetry.h"

#include <algorithm>
#include <sstream>

namespace spcg {

Counter& TelemetryRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<CounterSample> TelemetryRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.push_back({name, counter->value()});
  return out;  // std::map iteration is already name-sorted
}

void TelemetryRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
}

std::string render_telemetry(std::span<const CounterSample> samples) {
  std::size_t width = 0;
  for (const CounterSample& s : samples) width = std::max(width, s.name.size());
  std::ostringstream os;
  for (const CounterSample& s : samples) {
    os << s.name;
    for (std::size_t i = s.name.size(); i < width + 2; ++i) os << ' ';
    os << s.value << "\n";
  }
  return os.str();
}

}  // namespace spcg
