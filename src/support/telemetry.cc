#include "support/telemetry.h"

#include <algorithm>
#include <sstream>

namespace spcg {

Counter& TelemetryRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

MaxGauge& TelemetryRegistry::max_gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<MaxGauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MaxGauge>();
  return *slot;
}

LogHistogram& TelemetryRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LogHistogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return *slot;
}

std::vector<CounterSample> TelemetryRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& [name, counter] : counters_)
    out.push_back({name, counter->value()});
  for (const auto& [name, gauge] : gauges_)
    out.push_back({name + ".max", gauge->value()});
  for (const auto& [name, hist] : histograms_) {
    out.push_back({name + ".count", hist->count()});
    out.push_back({name + ".sum", hist->sum()});
    out.push_back({name + ".max", hist->max()});
    out.push_back({name + ".p50", hist->percentile(50.0)});
    out.push_back({name + ".p99", hist->percentile(99.0)});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void TelemetryRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

std::string render_telemetry(std::span<const CounterSample> samples) {
  std::size_t width = 0;
  for (const CounterSample& s : samples) width = std::max(width, s.name.size());
  std::ostringstream os;
  for (const CounterSample& s : samples) {
    os << s.name;
    for (std::size_t i = s.name.size(); i < width + 2; ++i) os << ' ';
    os << s.value << "\n";
  }
  return os.str();
}

}  // namespace spcg
