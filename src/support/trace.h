// Structured tracing for the SPCG pipeline (DESIGN.md §9).
//
// A TraceRecorder collects timestamped spans — named intervals with a
// category and optional key/value args — into per-thread buffers, so
// recording from worker pools, distributed ranks and OpenMP regions never
// contends on a shared lock in the hot path. Spans are RAII (`Span` records
// a complete event on destruction) and read MonotonicClock (support/timer.h),
// the same clock every phase timer in the repo uses.
//
// Cost model: when the recorder is disabled, constructing a Span is one
// relaxed atomic load plus a thread-local read — no strings are built, no
// buffers touched — so instrumentation can stay compiled into release hot
// paths. Per-iteration solver spans are additionally gated by an opt-in
// sampling knob (PcgOptions::trace_every) through TraceSampleScope, which
// suppresses nested spans on the current thread for unsampled iterations.
//
// Exporters live in support/expo.h: Chrome trace_event JSON (load the file
// in chrome://tracing or Perfetto) and Prometheus-style text exposition of
// trace-derived phase totals alongside the telemetry registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/timer.h"

namespace spcg {

/// One span annotation. `value` is a raw JSON fragment (a number, `true`,
/// or a quoted string) — build it with the trace_arg() helpers so strings
/// are escaped exactly once.
struct TraceArg {
  std::string key;
  std::string value;
};

TraceArg trace_arg(std::string key, std::int64_t v);
TraceArg trace_arg(std::string key, std::uint64_t v);
TraceArg trace_arg(std::string key, double v);
TraceArg trace_arg(std::string key, bool v);
TraceArg trace_arg(std::string key, std::string_view v);
inline TraceArg trace_arg(std::string key, const char* v) {
  return trace_arg(std::move(key), std::string_view(v));
}
inline TraceArg trace_arg(std::string key, std::int32_t v) {
  return trace_arg(std::move(key), static_cast<std::int64_t>(v));
}

/// One recorded span. Timestamps are nanoseconds since the recorder's
/// epoch (its construction, or the last clear()).
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;  // dense per-recorder thread id, first-use order
  std::vector<TraceArg> args;

  [[nodiscard]] std::uint64_t end_ns() const { return start_ns + duration_ns; }
};

/// Thread-safe span sink. record() appends to the calling thread's buffer
/// (one uncontended mutex per thread, taken only while tracing is enabled);
/// drain() steals every buffer's events and returns them sorted by start
/// time. A disabled recorder drops events before any allocation happens.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled = false);
  ~TraceRecorder() = default;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// The instant `ns_since_epoch` timestamps are measured from. Stored as
  /// an atomic tick count so clear() may race with concurrent recording.
  [[nodiscard]] MonotonicClock::time_point epoch() const {
    return MonotonicClock::time_point(MonotonicClock::duration(
        epoch_ticks_.load(std::memory_order_relaxed)));
  }

  /// Nanoseconds from the epoch to `tp` (0 if `tp` precedes the epoch).
  [[nodiscard]] std::uint64_t ns_since_epoch(
      MonotonicClock::time_point tp) const;

  /// Append one finished span for the calling thread. No-op when disabled.
  void record(std::string_view name, std::string_view category,
              MonotonicClock::time_point begin, MonotonicClock::time_point end,
              std::vector<TraceArg> args = {});

  /// Move every recorded event out (all threads), sorted by start_ns then
  /// tid. Buffers stay registered, so recording may continue afterwards.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Drop every buffered event and restart the epoch at now.
  void clear();

  /// Events recorded since construction / the last clear().
  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<MonotonicClock::rep> epoch_ticks_;
  const std::uint64_t id_;  // distinguishes recorder incarnations per thread

  mutable std::mutex mu_;  // guards buffers_ registration and epoch_ swap
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// The process-wide recorder every built-in instrumentation point reports
/// to. Disabled by default; CLIs/benches enable it (`--trace-out`).
TraceRecorder& global_trace();

/// True when spans on this thread are currently suppressed by an enclosing
/// TraceSampleScope (an unsampled solver iteration).
bool trace_suppressed() noexcept;

/// Iteration-sampling gate: while a scope constructed with sampled=false is
/// alive, Spans on this thread become no-ops. Scopes nest; an outer
/// unsampled scope suppresses inner sampled ones (restoring on unwind).
class TraceSampleScope {
 public:
  explicit TraceSampleScope(bool sampled);
  ~TraceSampleScope();

  TraceSampleScope(const TraceSampleScope&) = delete;
  TraceSampleScope& operator=(const TraceSampleScope&) = delete;

 private:
  bool prev_;
};

/// RAII span: captures the start time at construction, records a complete
/// event into the recorder at destruction (or an explicit finish()). When
/// the recorder is disabled or the thread is suppressed, construction is
/// near-free and nothing is recorded.
class Span {
 public:
  Span(TraceRecorder& rec, std::string_view name, std::string_view category)
      : rec_(rec.enabled() && !trace_suppressed() ? &rec : nullptr) {
    if (rec_ != nullptr) {
      name_.assign(name);
      category_.assign(category);
      begin_ = MonotonicClock::now();
    }
  }

  /// Report to the global recorder.
  Span(std::string_view name, std::string_view category)
      : Span(global_trace(), name, category) {}

  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Whether this span will be recorded (false: arg() is a no-op too).
  [[nodiscard]] bool active() const { return rec_ != nullptr; }

  /// Attach an annotation (any type trace_arg() accepts).
  template <class V>
  void arg(std::string key, V&& value) {
    if (rec_ != nullptr)
      args_.push_back(trace_arg(std::move(key), std::forward<V>(value)));
  }

  /// Record now instead of at scope exit. Idempotent.
  void finish() {
    if (rec_ == nullptr) return;
    rec_->record(name_, category_, begin_, MonotonicClock::now(),
                 std::move(args_));
    rec_ = nullptr;
  }

 private:
  TraceRecorder* rec_;
  MonotonicClock::time_point begin_;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
};

/// Total time and count per distinct (category, name) — the per-phase
/// accounting the Prometheus exposition and the regression harness consume.
struct PhaseTotal {
  std::string category;
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  [[nodiscard]] double total_seconds() const {
    return static_cast<double>(total_ns) * 1e-9;
  }
};

/// Aggregate events into phase totals, sorted by (category, name).
std::vector<PhaseTotal> aggregate_phases(std::span<const TraceEvent> events);

}  // namespace spcg
