#include "support/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace spcg {

namespace {

std::string format_number(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// JSON string escaping shared by trace_arg and the exporters (expo.cc).
std::string quote_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

namespace detail {
std::string trace_quote_json(std::string_view s) { return quote_json(s); }
}  // namespace detail

TraceArg trace_arg(std::string key, std::int64_t v) {
  return {std::move(key), std::to_string(v)};
}

TraceArg trace_arg(std::string key, std::uint64_t v) {
  return {std::move(key), std::to_string(v)};
}

TraceArg trace_arg(std::string key, double v) {
  return {std::move(key), format_number("%.17g", v)};
}

TraceArg trace_arg(std::string key, bool v) {
  return {std::move(key), v ? "true" : "false"};
}

TraceArg trace_arg(std::string key, std::string_view v) {
  return {std::move(key), quote_json(v)};
}

namespace {

std::atomic<std::uint64_t> g_recorder_ids{0};

/// Thread-local cache of (recorder incarnation -> buffer). A destroyed
/// recorder's entries go stale harmlessly: the shared_ptr keeps the buffer
/// bytes alive and the id never matches a new recorder.
struct BufferCacheEntry {
  std::uint64_t recorder_id = 0;
  std::shared_ptr<void> buffer;
};
thread_local std::vector<BufferCacheEntry> t_buffer_cache;

thread_local bool t_trace_suppressed = false;

}  // namespace

bool trace_suppressed() noexcept { return t_trace_suppressed; }

TraceSampleScope::TraceSampleScope(bool sampled) : prev_(t_trace_suppressed) {
  t_trace_suppressed = prev_ || !sampled;
}

TraceSampleScope::~TraceSampleScope() { t_trace_suppressed = prev_; }

TraceRecorder::TraceRecorder(bool enabled)
    : enabled_(enabled),
      epoch_ticks_(MonotonicClock::now().time_since_epoch().count()),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed) + 1) {}

std::uint64_t TraceRecorder::ns_since_epoch(
    MonotonicClock::time_point tp) const {
  const MonotonicClock::time_point e = epoch();
  if (tp <= e) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - e).count());
}

TraceRecorder::ThreadBuffer& TraceRecorder::buffer_for_this_thread() {
  for (const BufferCacheEntry& e : t_buffer_cache)
    if (e.recorder_id == id_)
      return *static_cast<ThreadBuffer*>(e.buffer.get());
  auto buf = std::make_shared<ThreadBuffer>();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buf->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buf);
  }
  t_buffer_cache.push_back({id_, buf});
  return *buf;
}

void TraceRecorder::record(std::string_view name, std::string_view category,
                           MonotonicClock::time_point begin,
                           MonotonicClock::time_point end,
                           std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.category.assign(category);
  ev.start_ns = ns_since_epoch(begin);
  const std::uint64_t end_ns = ns_since_epoch(end);
  ev.duration_ns = end_ns > ev.start_ns ? end_ns - ev.start_ns : 0;
  ev.args = std::move(args);
  ThreadBuffer& buf = buffer_for_this_thread();
  ev.tid = buf.tid;
  {
    const std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(std::move(ev));
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), std::make_move_iterator(buf->events.begin()),
               std::make_move_iterator(buf->events.end()));
    buf->events.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
    epoch_ticks_.store(MonotonicClock::now().time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
  }
  recorded_.store(0, std::memory_order_relaxed);
}

TraceRecorder& global_trace() {
  static TraceRecorder recorder(/*enabled=*/false);
  return recorder;
}

std::vector<PhaseTotal> aggregate_phases(std::span<const TraceEvent> events) {
  std::map<std::pair<std::string, std::string>, PhaseTotal> acc;
  for (const TraceEvent& ev : events) {
    PhaseTotal& t = acc[{ev.category, ev.name}];
    if (t.count == 0) {
      t.category = ev.category;
      t.name = ev.name;
    }
    ++t.count;
    t.total_ns += ev.duration_ns;
  }
  std::vector<PhaseTotal> out;
  out.reserve(acc.size());
  for (auto& [key, total] : acc) out.push_back(std::move(total));
  return out;
}

}  // namespace spcg
