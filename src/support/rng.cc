#include "support/rng.h"

#include <cmath>

#include "support/error.h"

namespace spcg {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::seed_state(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SPCG_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  // Box–Muller; draw until u1 is nonzero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::pareto(double alpha) {
  SPCG_CHECK(alpha > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return std::pow(u, -1.0 / alpha);
}

}  // namespace spcg
