// Summary statistics used throughout the benchmark harness: geometric means,
// percentiles, histograms, rank correlation and least-squares trendlines.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spcg {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Geometric mean of strictly positive values; throws on non-positive input.
double geometric_mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Fraction (0..1) of values strictly greater than `threshold`.
double fraction_above(std::span<const double> xs, double threshold);

/// Pearson correlation coefficient; 0 when either side has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation with average-rank tie handling.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi); values outside are clamped to the
/// first/last bin. Bin counts are returned as percentages of the total when
/// `as_percent` is set.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  double bin_width = 0.0;
  std::vector<double> counts;  // size == bins
};
Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins, bool as_percent);

/// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> average_ranks(std::span<const double> xs);

}  // namespace spcg
