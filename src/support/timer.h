// Wall-clock timing utilities.
//
// Every duration the repo reports (phase seconds, trace spans, deadline
// checks) is measured on MonotonicClock, pinned to std::chrono::steady_clock.
// std::chrono::high_resolution_clock is deliberately avoided: the standard
// allows it to alias system_clock, which can jump backwards under NTP
// adjustment and would produce negative spans. The static_assert makes the
// monotonicity guarantee a compile-time fact.
#pragma once

#include <chrono>

namespace spcg {

/// The single monotonic clock source for the whole repo: WallTimer, trace
/// spans (support/trace.h) and service deadlines all read this clock, so
/// their timestamps are directly comparable.
using MonotonicClock = std::chrono::steady_clock;
static_assert(MonotonicClock::is_steady,
              "spcg timing requires a monotonic clock");

/// Monotonic wall-clock timer. Starts on construction.
class WallTimer {
 public:
  using Clock = MonotonicClock;

  WallTimer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

}  // namespace spcg
