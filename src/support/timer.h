// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace spcg {

/// Monotonic wall-clock timer. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spcg
