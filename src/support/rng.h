// Deterministic random number generation for the synthetic matrix suite.
//
// Everything in the generator suite must be reproducible across platforms and
// standard-library versions, so we implement the distributions ourselves on
// top of xoshiro256** rather than relying on std::*_distribution (whose
// output is implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace spcg {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { seed_state(seed); }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Log-normal with given log-space mean/sigma: exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma);

  /// Heavy-tailed positive sample: Pareto with shape `alpha`, scale 1.
  double pareto(double alpha);

  /// Fisher–Yates shuffle of an index vector.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  void seed_state(std::uint64_t seed);
  std::uint64_t s_[4];
};

}  // namespace spcg
