// Sparse triangular solvers (SpTRSV): the executor half of the
// inspector–executor scheme.
//
// Two executors are provided:
//   * serial forward/backward substitution (reference),
//   * level-scheduled parallel substitution (OpenMP): rows within a
//     wavefront run in parallel, with an implicit barrier between levels —
//     the same execution structure as cuSPARSE's csrsv2 on the GPU.
//
// Factors follow the split_lu() convention: L is unit-lower with the unit
// diagonal stored, U is upper with its diagonal stored.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.h"
#include "wavefront/levels.h"

namespace spcg {

/// Solve L x = b, L lower triangular with stored diagonal. x may alias b.
template <class T>
void sptrsv_lower_serial(const Csr<T>& l, std::span<const T> b,
                         std::span<T> x) {
  SPCG_CHECK(l.rows == l.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == l.rows);
  SPCG_CHECK(static_cast<index_t>(x.size()) == l.rows);
  for (index_t i = 0; i < l.rows; ++i) {
    T acc = b[static_cast<std::size_t>(i)];
    T diag{0};
    for (index_t p = l.rowptr[static_cast<std::size_t>(i)];
         p < l.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = l.colind[static_cast<std::size_t>(p)];
      if (j < i)
        acc -= l.values[static_cast<std::size_t>(p)] *
               x[static_cast<std::size_t>(j)];
      else if (j == i)
        diag = l.values[static_cast<std::size_t>(p)];
    }
    SPCG_CHECK_MSG(diag != T{0}, "zero diagonal at row " << i);
    x[static_cast<std::size_t>(i)] = acc / diag;
  }
}

/// Solve U x = b, U upper triangular with stored diagonal. x may alias b.
template <class T>
void sptrsv_upper_serial(const Csr<T>& u, std::span<const T> b,
                         std::span<T> x) {
  SPCG_CHECK(u.rows == u.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == u.rows);
  SPCG_CHECK(static_cast<index_t>(x.size()) == u.rows);
  for (index_t i = u.rows - 1; i >= 0; --i) {
    T acc = b[static_cast<std::size_t>(i)];
    T diag{0};
    for (index_t p = u.rowptr[static_cast<std::size_t>(i)];
         p < u.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = u.colind[static_cast<std::size_t>(p)];
      if (j > i)
        acc -= u.values[static_cast<std::size_t>(p)] *
               x[static_cast<std::size_t>(j)];
      else if (j == i)
        diag = u.values[static_cast<std::size_t>(p)];
    }
    SPCG_CHECK_MSG(diag != T{0}, "zero diagonal at row " << i);
    x[static_cast<std::size_t>(i)] = acc / diag;
  }
}

namespace detail {

/// Multi-RHS variant: one level sweep serves every column, so the per-level
/// barrier cost is paid once per wavefront instead of once per (wavefront,
/// column). Per-row, per-column arithmetic matches the single-RHS kernels
/// entry for entry, so each column's solution is bitwise identical.
template <class T, bool kLowerTri>
void sptrsv_level_scheduled_multi(const Csr<T>& m, const LevelSchedule& sched,
                                  std::span<const T* const> bs,
                                  std::span<T* const> xs) {
  SPCG_CHECK(m.rows == m.cols);
  SPCG_CHECK(bs.size() == xs.size());
  SPCG_CHECK(static_cast<index_t>(sched.level_of_row.size()) == m.rows);
  index_t bad_row = -1;
  for (index_t l = 0; l < sched.num_levels(); ++l) {
    const index_t begin = sched.level_ptr[static_cast<std::size_t>(l)];
    const index_t end = sched.level_ptr[static_cast<std::size_t>(l) + 1];
#pragma omp parallel for schedule(static)
    for (index_t s = begin; s < end; ++s) {
      const index_t i = sched.rows_by_level[static_cast<std::size_t>(s)];
      for (std::size_t c = 0; c < bs.size(); ++c) {
        T acc = bs[c][static_cast<std::size_t>(i)];
        T diag{0};
        for (index_t p = m.rowptr[static_cast<std::size_t>(i)];
             p < m.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
          const index_t j = m.colind[static_cast<std::size_t>(p)];
          const bool dep = kLowerTri ? (j < i) : (j > i);
          if (dep)
            acc -= m.values[static_cast<std::size_t>(p)] *
                   xs[c][static_cast<std::size_t>(j)];
          else if (j == i)
            diag = m.values[static_cast<std::size_t>(p)];
        }
        if (diag == T{0}) {
#pragma omp atomic write
          bad_row = i;
          xs[c][static_cast<std::size_t>(i)] = T{0};  // keep the entry defined
        } else {
          xs[c][static_cast<std::size_t>(i)] = acc / diag;
        }
      }
    }
    SPCG_CHECK_MSG(bad_row < 0,
                   "zero or missing diagonal at row " << bad_row);
  }
}

template <class T, bool kLowerTri>
void sptrsv_level_scheduled(const Csr<T>& m, const LevelSchedule& sched,
                            std::span<const T> b, std::span<T> x) {
  SPCG_CHECK(m.rows == m.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == m.rows);
  SPCG_CHECK(static_cast<index_t>(x.size()) == m.rows);
  SPCG_CHECK(static_cast<index_t>(sched.level_of_row.size()) == m.rows);
  // An exception must not escape an OpenMP region, so a zero/missing
  // diagonal is flagged into bad_row and thrown after the level completes
  // (any one offending row suffices for the message).
  index_t bad_row = -1;
  for (index_t l = 0; l < sched.num_levels(); ++l) {
    const index_t begin = sched.level_ptr[static_cast<std::size_t>(l)];
    const index_t end = sched.level_ptr[static_cast<std::size_t>(l) + 1];
#pragma omp parallel for schedule(static)
    for (index_t s = begin; s < end; ++s) {
      const index_t i = sched.rows_by_level[static_cast<std::size_t>(s)];
      T acc = b[static_cast<std::size_t>(i)];
      T diag{0};
      for (index_t p = m.rowptr[static_cast<std::size_t>(i)];
           p < m.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t j = m.colind[static_cast<std::size_t>(p)];
        const bool dep = kLowerTri ? (j < i) : (j > i);
        if (dep)
          acc -= m.values[static_cast<std::size_t>(p)] *
                 x[static_cast<std::size_t>(j)];
        else if (j == i)
          diag = m.values[static_cast<std::size_t>(p)];
      }
      if (diag == T{0}) {
#pragma omp atomic write
        bad_row = i;
        x[static_cast<std::size_t>(i)] = T{0};  // keep the entry defined
      } else {
        x[static_cast<std::size_t>(i)] = acc / diag;
      }
    }
    // Implicit omp barrier at the end of each level's parallel region.
    SPCG_CHECK_MSG(bad_row < 0,
                   "zero or missing diagonal at row " << bad_row);
  }
}

}  // namespace detail

/// Level-scheduled lower solve. `sched` must be level_schedule(l, kLower).
/// x must not alias b (rows of one level read b while others write x).
template <class T>
void sptrsv_lower_levels(const Csr<T>& l, const LevelSchedule& sched,
                         std::span<const T> b, std::span<T> x) {
  detail::sptrsv_level_scheduled<T, true>(l, sched, b, x);
}

/// Level-scheduled upper solve. `sched` must be level_schedule(u, kUpper).
template <class T>
void sptrsv_upper_levels(const Csr<T>& u, const LevelSchedule& sched,
                         std::span<const T> b, std::span<T> x) {
  detail::sptrsv_level_scheduled<T, false>(u, sched, b, x);
}

/// Multi-RHS level-scheduled lower solve: xs[c] solves L xs[c] = bs[c]. One
/// level sweep (and its barriers) is shared across all columns. No xs[c] may
/// alias any bs[c'].
template <class T>
void sptrsv_lower_levels_multi(const Csr<T>& l, const LevelSchedule& sched,
                               std::span<const T* const> bs,
                               std::span<T* const> xs) {
  detail::sptrsv_level_scheduled_multi<T, true>(l, sched, bs, xs);
}

/// Multi-RHS level-scheduled upper solve.
template <class T>
void sptrsv_upper_levels_multi(const Csr<T>& u, const LevelSchedule& sched,
                               std::span<const T* const> bs,
                               std::span<T* const> xs) {
  detail::sptrsv_level_scheduled_multi<T, false>(u, sched, bs, xs);
}

}  // namespace spcg
