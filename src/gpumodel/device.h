// Device descriptions for the analytical execution model.
//
// No CUDA device exists in this environment, so the paper's A100/V100/EPYC
// measurements are replaced by a calibrated cost model (see DESIGN.md §3).
// A DeviceSpec captures the handful of architectural parameters the model
// needs: how many rows a wavefront can process concurrently, sustained
// memory bandwidth, arithmetic throughput, and the fixed cost of a kernel
// launch / wavefront synchronization — the quantity sparsification attacks.
#pragma once

#include <string>

namespace spcg {

struct DeviceSpec {
  std::string name;

  // Parallel structure.
  double parallel_units = 1;     // SMs (GPU) or cores (CPU)
  double rows_per_unit = 1;      // rows a unit can process concurrently
                                 // (GPU: resident warps; CPU: 1)
  // Throughput.
  double peak_gflops = 1;        // sustained single-precision GFLOP/s
  double dram_gbps = 1;          // sustained memory bandwidth, GB/s

  // Latencies (microseconds).
  double kernel_launch_us = 0;   // per kernel launch (GPU) / parallel region
  double level_sync_us = 0;      // per wavefront barrier inside SpTRSV/ILU
  double row_latency_us = 0;     // serial latency of one dependent row step

  /// Rows that can execute concurrently within one wavefront.
  [[nodiscard]] double concurrent_rows() const {
    return parallel_units * rows_per_unit;
  }
};

/// NVIDIA A100 (SXM4 40GB): 108 SMs, 1555 GB/s HBM2e.
DeviceSpec device_a100();

/// NVIDIA V100 (SXM2 16GB): 80 SMs, 900 GB/s HBM2.
DeviceSpec device_v100();

/// AMD EPYC 7413-class host as configured in the paper: 40 cores @ 2.65 GHz.
DeviceSpec device_epyc7413();

/// Host used for phases the paper runs on the CPU (sparsification analysis,
/// SuperLU-style ILU(K) factorization). Same silicon as device_epyc7413 but
/// modeled as a mostly-sequential pipeline with light threading.
DeviceSpec device_host_cpu();

}  // namespace spcg
