#include "gpumodel/cost_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace spcg {

double pcg_iteration_flops(index_t n, index_t a_nnz, index_t factor_nnz) {
  // SpMV: 2 flops/nnz. Two triangular solves over the combined factor:
  // 2 flops/nnz of L plus U ~= 2 * (factor_nnz + n) counting the unit
  // diagonal. BLAS-1 tail (2 dots, 2 axpys, 1 xpby, 1 norm): ~12n.
  return 2.0 * static_cast<double>(a_nnz) +
         2.0 * (static_cast<double>(factor_nnz) + static_cast<double>(n)) +
         12.0 * static_cast<double>(n);
}

CostModel::CostModel(DeviceSpec spec, int value_bytes)
    : spec_(std::move(spec)), value_bytes_(value_bytes) {
  SPCG_CHECK(value_bytes == 4 || value_bytes == 8);
}

OpCost CostModel::spmv(index_t rows, index_t nnz) const {
  OpCost c;
  c.flops = 2.0 * static_cast<double>(nnz);
  // Matrix stream (values + column indices), row pointers, x gathered, y out.
  c.bytes = static_cast<double>(nnz) * (value_bytes_ + index_bytes_) +
            static_cast<double>(rows) * (index_bytes_ + 2.0 * value_bytes_);
  c.seconds = launch_s() + std::max(mem_s(c.bytes), flop_s(c.flops));
  return c;
}

OpCost CostModel::blas1(index_t n, int vectors_touched,
                        int flops_per_element) const {
  OpCost c;
  c.flops = static_cast<double>(flops_per_element) * static_cast<double>(n);
  c.bytes = static_cast<double>(vectors_touched) * static_cast<double>(n) *
            value_bytes_;
  c.seconds = launch_s() + std::max(mem_s(c.bytes), flop_s(c.flops));
  return c;
}

OpCost CostModel::trisolve(const TriSolveStructure& s) const {
  OpCost c;
  c.seconds = launch_s();  // one solve kernel; levels sync internally
  const double concurrent = std::max(1.0, spec_.concurrent_rows());
  for (index_t l = 0; l < s.levels(); ++l) {
    const auto rows = static_cast<double>(
        s.rows_per_level[static_cast<std::size_t>(l)]);
    const auto nnz = static_cast<double>(
        s.nnz_per_level[static_cast<std::size_t>(l)]);
    const double flops = 2.0 * nnz;
    const double bytes = nnz * (value_bytes_ + index_bytes_) +
                         rows * (index_bytes_ + 2.0 * value_bytes_);
    // Rows beyond the device's concurrency serialize in batches; each batch
    // pays the dependent-load row latency once.
    const double batches = std::ceil(rows / concurrent);
    const double compute =
        batches * spec_.row_latency_us * 1e-6 + flop_s(flops);
    c.seconds += sync_s() + std::max(mem_s(bytes), compute);
    c.flops += flops;
    c.bytes += bytes;
  }
  return c;
}

OpCost CostModel::trisolve_syncfree(const TriSolveStructure& s) const {
  OpCost c;
  const double concurrent = std::max(1.0, spec_.concurrent_rows());
  double chain_s = 0.0;
  for (index_t l = 0; l < s.levels(); ++l) {
    const auto rows = static_cast<double>(
        s.rows_per_level[static_cast<std::size_t>(l)]);
    const auto nnz = static_cast<double>(
        s.nnz_per_level[static_cast<std::size_t>(l)]);
    c.flops += 2.0 * nnz;
    c.bytes += nnz * (value_bytes_ + index_bytes_) +
               rows * (index_bytes_ + 2.0 * value_bytes_);
    // No barrier: each level costs one dependent-load hop on the critical
    // path, serialized further only when the level exceeds the concurrency.
    chain_s += std::ceil(rows / concurrent) * spec_.row_latency_us * 1e-6;
  }
  // Memory streaming overlaps with the spin chain; compute adds on top of
  // whichever dominates.
  c.seconds = launch_s() +
              std::max(mem_s(c.bytes), chain_s + flop_s(c.flops));
  return c;
}

OpCost CostModel::ilu0_factorization(const TriSolveStructure& s,
                                     std::uint64_t elimination_ops) const {
  OpCost c;
  c.seconds = launch_s();
  const double concurrent = std::max(1.0, spec_.concurrent_rows());
  const double total_nnz = std::max(1.0, static_cast<double>(s.nnz));
  const double total_ops = 2.0 * static_cast<double>(elimination_ops);
  for (index_t l = 0; l < s.levels(); ++l) {
    const auto rows = static_cast<double>(
        s.rows_per_level[static_cast<std::size_t>(l)]);
    const auto nnz = static_cast<double>(
        s.nnz_per_level[static_cast<std::size_t>(l)]);
    // Elimination work distributes roughly with the factor nonzeros.
    const double flops = total_ops * (nnz / total_nnz);
    const double bytes = 2.0 * nnz * (value_bytes_ + index_bytes_) +
                         rows * index_bytes_;
    const double batches = std::ceil(rows / concurrent);
    const double compute =
        batches * spec_.row_latency_us * 1e-6 + flop_s(flops);
    c.seconds += sync_s() + std::max(mem_s(bytes), compute);
    c.flops += flops;
    c.bytes += bytes;
  }
  return c;
}

OpCost CostModel::iluk_factorization_host(std::uint64_t elimination_ops,
                                          index_t pattern_nnz) const {
  OpCost c;
  c.flops = 2.0 * static_cast<double>(elimination_ops);
  // Symbolic + scatter traffic scales with the filled pattern.
  c.bytes = 6.0 * static_cast<double>(pattern_nnz) *
            (value_bytes_ + index_bytes_);
  c.seconds = flop_s(c.flops) + mem_s(c.bytes);
  return c;
}

OpCost CostModel::sparsify_host(index_t nnz, int ratios_tried) const {
  OpCost c;
  const double n = static_cast<double>(nnz);
  // Magnitude sort of the off-diagonals plus, per candidate ratio, one
  // splitting pass and one wavefront (level-set) pass over the pattern.
  const double compare_ops = n * std::max(1.0, std::log2(std::max(2.0, n)));
  const double pass_ops = static_cast<double>(ratios_tried) * 4.0 * n;
  c.flops = compare_ops + pass_ops;
  c.bytes = (compare_ops + pass_ops) * index_bytes_;
  c.seconds = flop_s(c.flops) + mem_s(c.bytes);
  return c;
}

OpCost CostModel::pcg_iteration(const PcgIterationShape& s) const {
  OpCost c;
  c += spmv(s.n, s.a_nnz);
  c += trisolve(s.lower);
  c += trisolve(s.upper);
  // BLAS-1 tail of Algorithm 1: alpha dot (2 vec), x update (3 vec),
  // r update (3 vec), beta dot (2 vec), p update (3 vec), residual norm (1).
  c += blas1(s.n, 2, 2);
  c += blas1(s.n, 3, 2);
  c += blas1(s.n, 3, 2);
  c += blas1(s.n, 2, 2);
  c += blas1(s.n, 3, 2);
  c += blas1(s.n, 1, 2);
  return c;
}

}  // namespace spcg
