// Cost-model calibration: fit DeviceSpec coefficients to measured
// micro-kernel timings (DESIGN.md §10, autotune satellite).
//
// The analytical model in cost_model.h prices every kernel from five device
// coefficients — launch overhead, per-wavefront sync, byte time, flop time
// and the dependent-row latency. Out of the box those come from datasheet
// constants (device.h); calibrate() replaces them with a least-squares fit
// against real timings of the same kernels, so the ranking the autotuner's
// cost prior produces tracks the machine it actually runs on.
//
// The fit linearizes the model: where cost_model.h prices a kernel as
// launch + max(bytes/BW, flops/peak), calibration fits the additive
// surrogate launch + bytes*per_byte + flops*per_flop (+ level and batch
// terms for the level-scheduled kernels). The surrogate brackets the max
// within 2x and keeps the problem linear; the round-trip requirement is
// ranking fidelity (gpumodel calibration test: Spearman of predicted vs
// measured over candidate configurations), not absolute-seconds accuracy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpumodel/cost_model.h"
#include "gpumodel/device.h"
#include "sparse/csr.h"

namespace spcg {

/// One timed micro-kernel execution.
struct Measurement {
  enum class Kind { kSpmv, kTrisolve, kBlas1 };
  Kind kind = Kind::kSpmv;
  index_t rows = 0;
  index_t nnz = 0;                 // kSpmv: matrix nnz (unused for kBlas1)
  TriSolveStructure structure;     // kTrisolve only
  int vectors_touched = 0;         // kBlas1 only
  int flops_per_element = 0;       // kBlas1 only
  double seconds = 0.0;            // measured wall clock (median of repeats)
};

/// Fit diagnostics alongside the updated spec.
struct CalibrationResult {
  DeviceSpec spec;                 // the calibrated coefficients
  std::size_t measurements = 0;
  std::size_t clamped = 0;         // coefficients clamped at their floor
  double rms_residual_seconds = 0.0;
  double mean_abs_rel_error = 0.0;  // |pred - meas| / meas, averaged
};

/// Least-squares fit of the five DeviceSpec cost coefficients
/// (kernel_launch_us, level_sync_us, dram_gbps, peak_gflops, row_latency_us)
/// from `measurements`, starting from — and preserving the parallel
/// structure of — `spec`. Needs at least 5 measurements spanning the kernel
/// kinds; with fewer, or a degenerate system, the input spec is returned
/// unchanged (measurements == 0 in the result signals this). Coefficients
/// that fit negative (timing noise) are clamped to a small positive floor.
CalibrationResult calibrate(const DeviceSpec& spec,
                            std::span<const Measurement> measurements,
                            int value_bytes = 8);

/// Predicted seconds of one measurement under the *additive* surrogate the
/// fit minimizes (used by the calibration tests to check the round trip;
/// rankings should also agree with CostModel's max-form predictions).
double calibrated_prediction(const DeviceSpec& spec, const Measurement& m,
                             int value_bytes = 8);

/// Time the host micro-kernels (SpMV, serial lower/upper trisolve on the
/// ILU(0) factors, axpy, dot) on matrix `a` and return one Measurement per
/// kernel — five in total, enough for a full calibrate() fit — each the
/// median of `repeats` runs. This is the measurement source for host-side
/// calibration in tests and bench/autotune_study.
std::vector<Measurement> host_measurements(const Csr<double>& a,
                                           int repeats = 5);

}  // namespace spcg
