#include "gpumodel/device.h"

namespace spcg {

// Calibration notes: launch/sync latencies follow published microbenchmarks
// of the cuSPARSE analysis/solve path (5–10 us per kernel, a few us per
// wavefront barrier). Bandwidths are sustained STREAM-like numbers, not
// peaks. The resulting baseline PCG-ILU(0) GFLOP/s range on the synthetic
// suite falls inside the paper's reported 0.0004–156 GFLOP/s window
// (checked by bench/fig4 and tests/gpumodel_test).

DeviceSpec device_a100() {
  DeviceSpec d;
  d.name = "A100";
  d.parallel_units = 108;   // SMs
  d.rows_per_unit = 32;     // one row per resident warp
  d.peak_gflops = 2400;     // sustained sparse FP32 compute
  d.dram_gbps = 1400;       // sustained HBM2e
  d.kernel_launch_us = 8.0;
  d.level_sync_us = 6.0;
  d.row_latency_us = 0.45;  // dependent global-memory chain per row
  return d;
}

DeviceSpec device_v100() {
  DeviceSpec d;
  d.name = "V100";
  d.parallel_units = 80;
  d.rows_per_unit = 32;
  d.peak_gflops = 1500;
  d.dram_gbps = 820;
  d.kernel_launch_us = 9.0;
  d.level_sync_us = 7.0;
  d.row_latency_us = 0.55;
  return d;
}

DeviceSpec device_epyc7413() {
  DeviceSpec d;
  d.name = "EPYC-7413";
  d.parallel_units = 40;  // cores, as configured in the paper
  d.rows_per_unit = 1;
  d.peak_gflops = 180;    // sustained sparse FP32 across 40 cores
  d.dram_gbps = 190;
  d.kernel_launch_us = 1.5;  // OpenMP parallel-region entry
  d.level_sync_us = 1.2;     // OpenMP barrier
  d.row_latency_us = 0.04;   // cache-resident dependent chain
  return d;
}

DeviceSpec device_host_cpu() {
  DeviceSpec d;
  d.name = "host-cpu";
  d.parallel_units = 1;   // sequential phases (SuperLU-style factorization)
  d.rows_per_unit = 1;
  d.peak_gflops = 2.2;    // effective irregular sparse throughput, one core
  d.dram_gbps = 25;
  d.kernel_launch_us = 0.0;
  d.level_sync_us = 0.0;
  d.row_latency_us = 0.0;
  return d;
}

}  // namespace spcg
