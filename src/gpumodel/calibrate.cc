#include "gpumodel/calibrate.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "precond/ilu.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "sptrsv/sptrsv.h"
#include "support/timer.h"

namespace spcg {

namespace {

constexpr int kUnknowns = 5;  // [launch_s, sync_s, per_byte, per_flop, row_s]

/// Design-matrix row of one measurement under the additive surrogate.
std::array<double, kUnknowns> design_row(const DeviceSpec& spec,
                                         const Measurement& m,
                                         int value_bytes) {
  const double vb = value_bytes;
  const double ib = 4.0;  // index_t is int32 throughout the repo
  std::array<double, kUnknowns> row{};
  switch (m.kind) {
    case Measurement::Kind::kSpmv: {
      row[0] = 1.0;
      row[2] = static_cast<double>(m.nnz) * (vb + ib) +
               static_cast<double>(m.rows) * (ib + 2.0 * vb);
      row[3] = 2.0 * static_cast<double>(m.nnz);
      break;
    }
    case Measurement::Kind::kBlas1: {
      row[0] = 1.0;
      row[2] = static_cast<double>(m.vectors_touched) *
               static_cast<double>(m.rows) * vb;
      row[3] = static_cast<double>(m.flops_per_element) *
               static_cast<double>(m.rows);
      break;
    }
    case Measurement::Kind::kTrisolve: {
      row[0] = 1.0;
      row[1] = static_cast<double>(m.structure.levels());
      const double concurrent = std::max(1.0, spec.concurrent_rows());
      double bytes = 0.0, flops = 0.0, batches = 0.0;
      for (index_t l = 0; l < m.structure.levels(); ++l) {
        const auto rows = static_cast<double>(
            m.structure.rows_per_level[static_cast<std::size_t>(l)]);
        const auto nnz = static_cast<double>(
            m.structure.nnz_per_level[static_cast<std::size_t>(l)]);
        bytes += nnz * (vb + ib) + rows * (ib + 2.0 * vb);
        flops += 2.0 * nnz;
        batches += std::ceil(rows / concurrent);
      }
      row[2] = bytes;
      row[3] = flops;
      row[4] = batches;
      break;
    }
  }
  return row;
}

/// Solve the kUnknowns x kUnknowns SPD system (G + ridge I) x = rhs by
/// Gaussian elimination with partial pivoting. False on a singular pivot.
bool solve_normal(std::array<std::array<double, kUnknowns>, kUnknowns> g,
                  std::array<double, kUnknowns> rhs,
                  std::array<double, kUnknowns>* x) {
  for (int col = 0; col < kUnknowns; ++col) {
    int pivot = col;
    for (int r = col + 1; r < kUnknowns; ++r)
      if (std::abs(g[static_cast<std::size_t>(r)][static_cast<std::size_t>(
              col)]) >
          std::abs(g[static_cast<std::size_t>(pivot)]
                    [static_cast<std::size_t>(col)]))
        pivot = r;
    std::swap(g[static_cast<std::size_t>(col)],
              g[static_cast<std::size_t>(pivot)]);
    std::swap(rhs[static_cast<std::size_t>(col)],
              rhs[static_cast<std::size_t>(pivot)]);
    const double d =
        g[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    if (std::abs(d) < 1e-300) return false;
    for (int r = col + 1; r < kUnknowns; ++r) {
      const double f = g[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(col)] /
                       d;
      for (int c = col; c < kUnknowns; ++c)
        g[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -=
            f * g[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)];
      rhs[static_cast<std::size_t>(r)] -=
          f * rhs[static_cast<std::size_t>(col)];
    }
  }
  for (int r = kUnknowns - 1; r >= 0; --r) {
    double acc = rhs[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < kUnknowns; ++c)
      acc -= g[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
             (*x)[static_cast<std::size_t>(c)];
    (*x)[static_cast<std::size_t>(r)] =
        acc / g[static_cast<std::size_t>(r)][static_cast<std::size_t>(r)];
  }
  return true;
}

double surrogate_seconds(const std::array<double, kUnknowns>& row,
                         const std::array<double, kUnknowns>& x) {
  double s = 0.0;
  for (int i = 0; i < kUnknowns; ++i)
    s += row[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
  return s;
}

std::array<double, kUnknowns> coefficients_of(const DeviceSpec& spec) {
  return {spec.kernel_launch_us * 1e-6, spec.level_sync_us * 1e-6,
          1.0 / (spec.dram_gbps * 1e9), 1.0 / (spec.peak_gflops * 1e9),
          spec.row_latency_us * 1e-6};
}

}  // namespace

CalibrationResult calibrate(const DeviceSpec& spec,
                            std::span<const Measurement> measurements,
                            int value_bytes) {
  CalibrationResult out;
  out.spec = spec;
  if (measurements.size() < kUnknowns) return out;

  // Normal equations G = D^T D, rhs = D^T t, with each row scaled by its
  // measured time so fast kernels carry the same relative weight as slow
  // ones (otherwise a single large trisolve dominates the fit).
  std::array<std::array<double, kUnknowns>, kUnknowns> g{};
  std::array<double, kUnknowns> rhs{};
  for (const Measurement& m : measurements) {
    if (m.seconds <= 0.0) continue;
    std::array<double, kUnknowns> row = design_row(spec, m, value_bytes);
    const double w = 1.0 / m.seconds;
    for (int i = 0; i < kUnknowns; ++i) {
      for (int j = 0; j < kUnknowns; ++j)
        g[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            w * w * row[static_cast<std::size_t>(i)] *
            row[static_cast<std::size_t>(j)];
      rhs[static_cast<std::size_t>(i)] +=
          w * w * row[static_cast<std::size_t>(i)] * m.seconds;
    }
  }
  // Ridge proportional to the prior coefficients keeps unobserved terms
  // (e.g. no trisolve measurement -> sync/latency columns all zero) at their
  // datasheet values instead of exploding.
  const std::array<double, kUnknowns> prior = coefficients_of(spec);
  for (int i = 0; i < kUnknowns; ++i) {
    const double p = std::max(prior[static_cast<std::size_t>(i)], 1e-15);
    const double ridge = 1e-4 / (p * p);
    g[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] += ridge;
    rhs[static_cast<std::size_t>(i)] +=
        ridge * prior[static_cast<std::size_t>(i)];
  }

  std::array<double, kUnknowns> x{};
  if (!solve_normal(g, rhs, &x)) return out;

  // Clamp to physical floors; negative fits are timing noise.
  const std::array<double, kUnknowns> floor = {1e-12, 1e-12, 1e-15, 1e-15,
                                               1e-12};
  for (int i = 0; i < kUnknowns; ++i) {
    if (x[static_cast<std::size_t>(i)] < floor[static_cast<std::size_t>(i)]) {
      x[static_cast<std::size_t>(i)] = floor[static_cast<std::size_t>(i)];
      ++out.clamped;
    }
  }

  out.spec.kernel_launch_us = x[0] * 1e6;
  out.spec.level_sync_us = x[1] * 1e6;
  out.spec.dram_gbps = 1.0 / (x[2] * 1e9);
  out.spec.peak_gflops = 1.0 / (x[3] * 1e9);
  out.spec.row_latency_us = x[4] * 1e6;

  double sq = 0.0, rel = 0.0;
  std::size_t used = 0;
  for (const Measurement& m : measurements) {
    if (m.seconds <= 0.0) continue;
    const double pred =
        surrogate_seconds(design_row(spec, m, value_bytes), x);
    sq += (pred - m.seconds) * (pred - m.seconds);
    rel += std::abs(pred - m.seconds) / m.seconds;
    ++used;
  }
  out.measurements = used;
  if (used > 0) {
    out.rms_residual_seconds = std::sqrt(sq / static_cast<double>(used));
    out.mean_abs_rel_error = rel / static_cast<double>(used);
  }
  return out;
}

double calibrated_prediction(const DeviceSpec& spec, const Measurement& m,
                             int value_bytes) {
  return surrogate_seconds(design_row(spec, m, value_bytes),
                           coefficients_of(spec));
}

std::vector<Measurement> host_measurements(const Csr<double>& a,
                                           int repeats) {
  repeats = std::max(1, repeats);
  const auto n = static_cast<std::size_t>(a.rows);
  std::vector<double> x(n, 1.0), y(n, 0.0);

  auto median_seconds = [&](auto&& kernel) {
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      kernel();
      times.push_back(timer.seconds());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };

  std::vector<Measurement> out;

  Measurement spmv_m;
  spmv_m.kind = Measurement::Kind::kSpmv;
  spmv_m.rows = a.rows;
  spmv_m.nnz = a.nnz();
  spmv_m.seconds = median_seconds([&] {
    spmv(a, std::span<const double>(x), std::span<double>(y));
  });
  out.push_back(spmv_m);

  const IluResult<double> fact = ilu0(a);
  const TriangularFactors<double> factors = split_lu(fact);
  Measurement tri_l;
  tri_l.kind = Measurement::Kind::kTrisolve;
  tri_l.rows = a.rows;
  tri_l.nnz = factors.l.nnz();
  tri_l.structure = trisolve_structure(factors.l, Triangle::kLower);
  tri_l.seconds = median_seconds([&] {
    sptrsv_lower_serial(factors.l, std::span<const double>(x),
                        std::span<double>(y));
  });
  out.push_back(tri_l);

  Measurement tri_u;
  tri_u.kind = Measurement::Kind::kTrisolve;
  tri_u.rows = a.rows;
  tri_u.nnz = factors.u.nnz();
  tri_u.structure = trisolve_structure(factors.u, Triangle::kUpper);
  tri_u.seconds = median_seconds([&] {
    sptrsv_upper_serial(factors.u, std::span<const double>(x),
                        std::span<double>(y));
  });
  out.push_back(tri_u);

  Measurement axpy_m;
  axpy_m.kind = Measurement::Kind::kBlas1;
  axpy_m.rows = a.rows;
  axpy_m.vectors_touched = 3;  // axpy reads x, reads+writes y
  axpy_m.flops_per_element = 2;
  axpy_m.seconds = median_seconds([&] {
    axpy(1.000001, std::span<const double>(x), std::span<double>(y));
  });
  out.push_back(axpy_m);

  Measurement dot_m;
  dot_m.kind = Measurement::Kind::kBlas1;
  dot_m.rows = a.rows;
  dot_m.vectors_touched = 2;  // dot reads x and y
  dot_m.flops_per_element = 2;
  volatile double sink = 0.0;
  dot_m.seconds = median_seconds([&] {
    sink = sink + dot(std::span<const double>(x), std::span<const double>(y));
  });
  out.push_back(dot_m);

  return out;
}

}  // namespace spcg
