// Analytical execution model for the kernels of a PCG iteration and the
// preconditioner setup phases.
//
// Modeling approach (DESIGN.md §3): every kernel is a roofline term
// max(compute, memory) plus fixed launch overhead. Level-scheduled kernels
// (SpTRSV, wavefront ILU(0)) additionally pay one synchronization per
// wavefront and serialize row batches when a level holds more rows than the
// device can run concurrently — which is precisely the cost structure that
// makes wavefront reduction profitable.
//
// The model also accumulates byte/flop counters so benches can report the
// DRAM-utilization and compute-utilization shifts of paper §5.3.
#pragma once

#include <cstdint>
#include <vector>

#include "gpumodel/device.h"
#include "sparse/csr.h"
#include "wavefront/levels.h"

namespace spcg {

/// Aggregate cost of one (or a sum of) modeled operations.
struct OpCost {
  double seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;

  OpCost& operator+=(const OpCost& o) {
    seconds += o.seconds;
    flops += o.flops;
    bytes += o.bytes;
    return *this;
  }
  friend OpCost operator+(OpCost a, const OpCost& b) { return a += b; }
  friend OpCost operator*(double k, OpCost c) {
    c.seconds *= k;
    c.flops *= k;
    c.bytes *= k;
    return c;
  }

  [[nodiscard]] double gflops_rate() const {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

/// Level-schedule shape of a triangular solve, decoupled from values.
struct TriSolveStructure {
  index_t n = 0;
  index_t nnz = 0;                       // triangle nnz incl. diagonal
  std::vector<index_t> rows_per_level;
  std::vector<index_t> nnz_per_level;

  [[nodiscard]] index_t levels() const {
    return static_cast<index_t>(rows_per_level.size());
  }
};

/// Extract the structure for the `tri` triangle of `m` (which may be a full
/// combined LU factor; entries outside the triangle are ignored).
template <class T>
TriSolveStructure trisolve_structure(const Csr<T>& m, Triangle tri) {
  const LevelSchedule sched = level_schedule(m, tri);
  TriSolveStructure s;
  s.n = m.rows;
  s.rows_per_level.assign(static_cast<std::size_t>(sched.num_levels()), 0);
  for (index_t l = 0; l < sched.num_levels(); ++l)
    s.rows_per_level[static_cast<std::size_t>(l)] = sched.level_size(l);
  s.nnz_per_level = level_nnz(m, sched, tri);
  for (const index_t c : s.nnz_per_level) s.nnz += c;
  return s;
}

/// Shape of one PCG iteration (Algorithm 1 body): SpMV with A, two
/// triangular solves with the factor, and the BLAS-1 tail.
struct PcgIterationShape {
  index_t n = 0;
  index_t a_nnz = 0;
  TriSolveStructure lower;
  TriSolveStructure upper;
};

template <class T>
PcgIterationShape pcg_iteration_shape(const Csr<T>& a, const Csr<T>& lu) {
  PcgIterationShape s;
  s.n = a.rows;
  s.a_nnz = a.nnz();
  s.lower = trisolve_structure(lu, Triangle::kLower);
  s.upper = trisolve_structure(lu, Triangle::kUpper);
  return s;
}

/// Theoretical FLOPs of one PCG iteration (paper §4.1: computed for the
/// non-sparsified baseline and reused for all methods when reporting rates).
double pcg_iteration_flops(index_t n, index_t a_nnz, index_t factor_nnz);

/// The analytical model for one device.
class CostModel {
 public:
  CostModel(DeviceSpec spec, int value_bytes);

  [[nodiscard]] const DeviceSpec& device() const { return spec_; }

  /// y = A x for CSR A.
  [[nodiscard]] OpCost spmv(index_t rows, index_t nnz) const;

  /// One fused BLAS-1 pass over n elements (dot, axpy, norm...):
  /// `vectors_touched` full-vector streams, `flops_per_element` ops.
  [[nodiscard]] OpCost blas1(index_t n, int vectors_touched,
                             int flops_per_element) const;

  /// Level-scheduled sparse triangular solve.
  [[nodiscard]] OpCost trisolve(const TriSolveStructure& s) const;

  /// Synchronization-free sparse triangular solve (Liu et al. / Capellini
  /// style): one kernel, rows busy-wait on their dependences, no barriers.
  /// The critical path still pays one dependent-latency hop per level, so
  /// wavefront reduction keeps helping — just less than with barriers.
  [[nodiscard]] OpCost trisolve_syncfree(const TriSolveStructure& s) const;

  /// Wavefront-scheduled ILU(0) factorization on the device (cuSPARSE
  /// csrilu02-style): level structure of the matrix pattern + the measured
  /// elimination work.
  [[nodiscard]] OpCost ilu0_factorization(const TriSolveStructure& s,
                                          std::uint64_t elimination_ops) const;

  /// Host-side ILU(K) factorization (SuperLU-style, sequential sparse code).
  [[nodiscard]] OpCost iluk_factorization_host(std::uint64_t elimination_ops,
                                               index_t pattern_nnz) const;

  /// Host-side cost of Algorithm 2 (sort + candidate passes over A).
  [[nodiscard]] OpCost sparsify_host(index_t nnz, int ratios_tried) const;

  /// Full PCG iteration: SpMV + L-solve + U-solve + BLAS-1 tail.
  [[nodiscard]] OpCost pcg_iteration(const PcgIterationShape& s) const;

 private:
  [[nodiscard]] double launch_s() const { return spec_.kernel_launch_us * 1e-6; }
  [[nodiscard]] double sync_s() const { return spec_.level_sync_us * 1e-6; }
  [[nodiscard]] double mem_s(double bytes) const {
    return bytes / (spec_.dram_gbps * 1e9);
  }
  [[nodiscard]] double flop_s(double flops) const {
    return flops / (spec_.peak_gflops * 1e9);
  }

  DeviceSpec spec_;
  int value_bytes_;
  int index_bytes_ = 4;
};

}  // namespace spcg
