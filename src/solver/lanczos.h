// Lanczos estimation of extreme eigenvalues and condition number for
// symmetric matrices. Used by the "exact condition number" ablation
// (paper §3.2.3) and the condition-number analysis (§5.4).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/csr.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "support/rng.h"

namespace spcg {

struct EigEstimate {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  [[nodiscard]] double condition_number() const {
    return lambda_min > 0.0 ? lambda_max / lambda_min
                            : std::numeric_limits<double>::infinity();
  }
};

namespace detail {

/// Eigenvalues of a symmetric tridiagonal matrix via implicit QL with Wilkinson
/// shifts (tql2 without eigenvectors). diag/offdiag are modified in place;
/// returns the sorted eigenvalues.
inline std::vector<double> tridiag_eigenvalues(std::vector<double> d,
                                               std::vector<double> e) {
  const std::size_t n = d.size();
  if (n == 0) return {};
  e.push_back(0.0);  // e[i] couples d[i] and d[i+1]; sentinel at the end
  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iter = 0;
    while (true) {
      std::size_t m = l;
      for (; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m == l) break;
      if (++iter > 50) break;  // degrade gracefully on pathological input
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0, c = 1.0, p = 0.0;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
      }
      if (r == 0.0 && m > l + 1) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace detail

/// Estimate the extreme eigenvalues of symmetric A with `steps` Lanczos
/// iterations (full reorthogonalization, so `steps` should stay modest).
template <class T>
EigEstimate lanczos_extreme_eigenvalues(const Csr<T>& a, int steps = 60,
                                        std::uint64_t seed = 12345) {
  SPCG_CHECK(a.rows == a.cols);
  const auto n = static_cast<std::size_t>(a.rows);
  const int m = std::min<int>(steps, a.rows);
  SPCG_CHECK(m >= 1);

  Rng rng(seed);
  std::vector<std::vector<double>> basis;
  basis.reserve(static_cast<std::size_t>(m));
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal();
  const double v0n = norm2(std::span<const double>(v));
  for (double& x : v) x /= v0n;

  std::vector<double> alpha, beta;
  std::vector<double> w(n), av(n);
  std::vector<T> vt(n), avt(n);

  for (int j = 0; j < m; ++j) {
    basis.push_back(v);
    for (std::size_t i = 0; i < n; ++i) vt[i] = static_cast<T>(v[i]);
    spmv(a, std::span<const T>(vt), std::span<T>(avt));
    for (std::size_t i = 0; i < n; ++i) av[i] = static_cast<double>(avt[i]);

    const double aj = dot(std::span<const double>(v), std::span<const double>(av));
    alpha.push_back(aj);
    w = av;
    // Full reorthogonalization against the whole basis for stability.
    for (const auto& q : basis) {
      const double proj = dot(std::span<const double>(w), std::span<const double>(q));
      axpy(-proj, std::span<const double>(q), std::span<double>(w));
    }
    const double bj = norm2(std::span<const double>(w));
    if (bj < 1e-14 || j == m - 1) break;
    beta.push_back(bj);
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / bj;
  }

  const std::vector<double> evals =
      detail::tridiag_eigenvalues(alpha, beta);
  EigEstimate est;
  if (!evals.empty()) {
    est.lambda_min = evals.front();
    est.lambda_max = evals.back();
  }
  return est;
}

}  // namespace spcg
