// Mixed-precision PCG — the extension the paper's §6.2 points at ("the SPCG
// solver proposed in this work can additionally benefit from mixed-precision
// design").
//
// The outer CG recurrence runs in double precision while the preconditioner
// (the two triangular solves, the bandwidth-bound part) is applied in single
// precision. Since M only steers the search direction, a low-precision apply
// perturbs the preconditioner, not the solution: CG still converges to
// double-precision accuracy, and the factor moves half the bytes.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "precond/ilu.h"
#include "precond/preconditioner.h"

namespace spcg {

/// Double-precision Preconditioner interface backed by float factors.
class MixedPrecisionIluPreconditioner final : public Preconditioner<double> {
 public:
  /// Factorization is performed (or given) in double and stored in float.
  explicit MixedPrecisionIluPreconditioner(const IluResult<double>& fact,
                                           TrsvExec exec = TrsvExec::kSerial)
      : inner_(to_float(fact), exec),
        r32_(static_cast<std::size_t>(fact.lu.rows)),
        z32_(static_cast<std::size_t>(fact.lu.rows)) {}

  void apply(std::span<const double> r, std::span<double> z) const override {
    SPCG_CHECK(r.size() == r32_.size());
    for (std::size_t i = 0; i < r.size(); ++i)
      r32_[i] = static_cast<float>(r[i]);
    inner_.apply(std::span<const float>(r32_), std::span<float>(z32_));
    for (std::size_t i = 0; i < z.size(); ++i)
      z[i] = static_cast<double>(z32_[i]);
  }

  [[nodiscard]] index_t rows() const override { return inner_.rows(); }

  /// Bytes held by the single-precision factor (vs 2x for double).
  [[nodiscard]] std::size_t factor_bytes() const {
    const auto& f = inner_.factors();
    return (f.l.values.size() + f.u.values.size()) * sizeof(float) +
           (f.l.colind.size() + f.u.colind.size()) * sizeof(index_t);
  }

 private:
  static IluResult<float> to_float(const IluResult<double>& fact) {
    IluResult<float> out;
    out.lu = csr_cast<float>(fact.lu);
    out.diag_pos = fact.diag_pos;
    out.fill_nnz = fact.fill_nnz;
    out.breakdown = fact.breakdown;
    out.elimination_ops = fact.elimination_ops;
    return out;
  }

  IluPreconditioner<float> inner_;
  mutable std::vector<float> r32_;
  mutable std::vector<float> z32_;
};

}  // namespace spcg
