// Pipelined preconditioned conjugate gradient (Ghysels & Vanroose).
//
// Algebraically equivalent to classic PCG but restructured so both dot
// products of an iteration are computed back-to-back and can overlap with
// the SpMV — one global synchronization per iteration instead of two. On the
// device model this halves the BLAS-1 launch/sync count; numerically the
// extra recurrences admit slightly more rounding drift, which is why the
// classic three-term version remains the default solver.
//
// Recurrences (left preconditioning, M z = r):
//   w = A z;  gamma = (r, z);  delta = (w, z)
//   beta = gamma / gamma_old;  alpha = gamma / (delta - beta * gamma / alpha)
//   p <- z + beta p;  s <- w + beta s;  q <- M^{-1} s (as m = M^{-1} w...)
// following the standard pipelined PCG formulation.
#pragma once

#include "precond/preconditioner.h"
#include "solver/pcg.h"

namespace spcg {

/// Pipelined PCG. Same options/result types as pcg(). `x0` is an optional
/// initial guess: empty = start from zero (bitwise identical to the
/// historical behavior — r0 is taken from b without an SpMV).
template <class T>
SolveResult<T> pipelined_pcg(const Csr<T>& a, std::span<const T> b,
                             const Preconditioner<T>& m,
                             const PcgOptions& opt = {},
                             std::span<const T> x0 = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == a.rows);
  SPCG_CHECK(m.rows() == a.rows);
  const auto n = static_cast<std::size_t>(a.rows);
  const bool warm = !x0.empty();
  if (warm) SPCG_CHECK(static_cast<index_t>(x0.size()) == a.rows);

  SolveResult<T> res;
  if (warm) {
    res.x.assign(x0.begin(), x0.end());
  } else {
    res.x.assign(n, T{0});
  }

  std::vector<T> r(b.begin(), b.end());  // r0 = b - A x0 (x0 = 0: r0 = b)
  std::vector<T> z(n), w(n), mw(n), p(n), s(n), q(n);
  if (warm) {
    spmv(a, std::span<const T>(res.x), std::span<T>(w));
    for (std::size_t i = 0; i < n; ++i) r[i] -= w[i];
    w.assign(n, T{0});
  }

  m.apply(r, std::span<T>(z));                      // z = M^{-1} r
  spmv(a, std::span<const T>(z), std::span<T>(w));  // w = A z

  const double b_norm = static_cast<double>(norm2(std::span<const T>(b)));
  const double target =
      opt.relative ? opt.tolerance * (b_norm > 0.0 ? b_norm : 1.0)
                   : opt.tolerance;

  T gamma = dot(std::span<const T>(r), std::span<const T>(z));
  T alpha{0}, gamma_old{0};
  double r_norm = static_cast<double>(norm2(std::span<const T>(r)));
  if (opt.record_history) res.residual_history.push_back(r_norm);

  std::int32_t k = 0;
  for (; k < opt.max_iterations; ++k) {
    if (r_norm < target) {
      res.status = SolveStatus::kConverged;
      break;
    }
    // The single fused reduction of the iteration: gamma was updated at the
    // bottom of the loop; delta pairs with it.
    const T delta = dot(std::span<const T>(w), std::span<const T>(z));
    m.apply(w, std::span<T>(mw));  // m = M^{-1} w (overlaps the reduction)

    T beta;
    if (k == 0) {
      beta = T{0};
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_old;
      const T denom = delta - beta * gamma / alpha;
      if (!(denom != T{0}) || denom != denom) {  // zero or NaN
        res.status = SolveStatus::kBreakdown;
        break;
      }
      alpha = gamma / denom;
    }
    if (!(alpha == alpha)) {  // NaN guard
      res.status = SolveStatus::kBreakdown;
      break;
    }

    // Vector recurrences (all local, no reductions).
    xpby(std::span<const T>(z), beta, std::span<T>(p));    // p = z + beta p
    xpby(std::span<const T>(w), beta, std::span<T>(s));    // s = w + beta s
    xpby(std::span<const T>(mw), beta, std::span<T>(q));   // q = m + beta q
    axpy(alpha, std::span<const T>(p), std::span<T>(res.x));
    axpy(-alpha, std::span<const T>(s), std::span<T>(r));
    axpy(-alpha, std::span<const T>(q), std::span<T>(z));

    spmv(a, std::span<const T>(z), std::span<T>(w));  // w = A z
    gamma_old = gamma;
    gamma = dot(std::span<const T>(r), std::span<const T>(z));
    if (gamma != gamma) {
      res.status = SolveStatus::kBreakdown;
      ++k;
      break;
    }
    r_norm = static_cast<double>(norm2(std::span<const T>(r)));
    if (opt.record_history) res.residual_history.push_back(r_norm);
  }
  if (res.status == SolveStatus::kMaxIterations && r_norm < target)
    res.status = SolveStatus::kConverged;

  res.iterations = k;
  std::vector<T> ax(n);
  spmv(a, std::span<const T>(res.x), std::span<T>(ax));
  double true_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(b[i]) - static_cast<double>(ax[i]);
    true_norm += d * d;
  }
  res.final_residual_norm = std::sqrt(true_norm);
  return res;
}

template <class T>
SolveResult<T> pipelined_pcg(const Csr<T>& a, const std::vector<T>& b,
                             const Preconditioner<T>& m,
                             const PcgOptions& opt = {}) {
  return pipelined_pcg(a, std::span<const T>(b), m, opt);
}

}  // namespace spcg
