// Conjugate gradient solvers.
//
// pcg() is the left-preconditioned CG of the paper's Algorithm 1, with the
// same control flow: residual check at the top of the loop, preconditioner
// application once per iteration, and a maximum-iteration cap. cg() is the
// unpreconditioned special case.
//
// Two extensions serve the transient-solve subsystem (src/transient/):
//   * an optional initial guess x0 (warm start). When omitted the solver is
//     bitwise identical to the historical x0 = 0 behavior — the residual is
//     initialized directly from b with no SpMV.
//   * an optional caller-owned PcgWorkspace. Repeated solves through one
//     workspace reuse every scratch vector's capacity, so a steady-state
//     solve performs zero heap allocations (the contract bench/transient and
//     SPCG_ALLOC_AUDIT enforce).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/alloc_audit.h"
#include "precond/preconditioner.h"
#include "sparse/csr.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "support/trace.h"

namespace spcg {

/// Solver configuration (paper defaults: tol 1e-12, 1000 iterations).
struct PcgOptions {
  double tolerance = 1e-12;   // convergence when ||r|| < tolerance
  bool relative = false;      // if set, compare against tolerance * ||b||
  std::int32_t max_iterations = 1000;
  bool record_history = false;  // keep ||r|| per iteration
  /// Per-iteration trace sampling: when the global trace recorder is
  /// enabled and trace_every > 0, every trace_every-th iteration emits
  /// "iteration"/"spmv"/"precond"/"reduce" spans (and the SpTRSV sweep
  /// spans nested under the preconditioner apply). 0 = per-iteration spans
  /// off; the enclosing "pcg" span is always emitted while tracing. Does
  /// not affect the setup cache key (solve-phase option).
  std::int32_t trace_every = 0;
};

enum class SolveStatus {
  kConverged,
  kMaxIterations,
  kBreakdown,  // division by (numerically) zero curvature or rho
};

/// Result of a CG/PCG run.
template <class T>
struct SolveResult {
  std::vector<T> x;
  SolveStatus status = SolveStatus::kMaxIterations;
  std::int32_t iterations = 0;        // iterations actually performed
  double final_residual_norm = 0.0;   // ||b - A x||_2 at exit (recomputed)
  std::vector<double> residual_history;  // when record_history

  [[nodiscard]] bool converged() const {
    return status == SolveStatus::kConverged;
  }
};

/// Caller-owned scratch for pcg(). A default-constructed workspace is valid;
/// the first solve through it sizes every vector and subsequent solves of
/// the same dimension reuse the capacity (no heap traffic). The `x` member
/// is a donor buffer for the result: pcg() moves it into SolveResult::x, so
/// it is empty after the call — move a retired solution buffer back in
/// before the next solve to keep the round trip allocation-free (see
/// TransientSession for the canonical double-buffer pattern).
template <class T>
struct PcgWorkspace {
  std::vector<T> r, z, p, w, ax;
  std::vector<T> x;  // donor buffer, consumed by each pcg() call
};

/// Left-preconditioned conjugate gradient (Algorithm 1 of the paper).
///
/// `x0`: optional initial guess; empty = start from zero (bitwise identical
/// to the historical behavior — r0 is taken from b without an SpMV). When
/// provided, x0.size() must equal a.rows and must not alias the workspace.
/// `ws`: optional caller-owned scratch (see PcgWorkspace); null = private
/// scratch allocated per call.
template <class T>
SolveResult<T> pcg(const Csr<T>& a, std::span<const T> b,
                   const Preconditioner<T>& m, const PcgOptions& opt = {},
                   std::span<const T> x0 = {}, PcgWorkspace<T>* ws = nullptr) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == a.rows);
  SPCG_CHECK(m.rows() == a.rows);
  const auto n = static_cast<std::size_t>(a.rows);
  const bool warm = !x0.empty();
  if (warm) SPCG_CHECK(static_cast<index_t>(x0.size()) == a.rows);

  Span pcg_span("pcg", "solve");
  pcg_span.arg("rows", static_cast<std::int64_t>(a.rows));
  pcg_span.arg("nnz", static_cast<std::int64_t>(a.nnz()));

  PcgWorkspace<T> local;
  PcgWorkspace<T>& wk = ws != nullptr ? *ws : local;

  SolveResult<T> res;
  res.x = std::move(wk.x);  // donor buffer (empty for the private workspace)
  if (warm) {
    res.x.assign(x0.begin(), x0.end());
  } else {
    res.x.assign(n, T{0});  // x0 = 0
  }

  const double b_norm = static_cast<double>(norm2(b));
  if (b_norm == 0.0) {
    // b = 0 has the exact solution x = 0. Under relative tolerance the
    // threshold tolerance*||b|| would be 0 and ||r|| < 0 can never hold, so
    // the solver could only exit at max_iterations; answer directly instead
    // (an initial guess is discarded — the exact answer is known).
    res.x.assign(n, T{0});
    res.status = SolveStatus::kConverged;
    if (opt.record_history) res.residual_history.push_back(0.0);
    pcg_span.arg("iterations", std::int64_t{0});
    return res;
  }

  const bool trace_iters = opt.trace_every > 0 && global_trace().enabled();
  wk.r.assign(b.begin(), b.end());  // r0 = b - A x0 (x0 = 0: r0 = b)
  if (warm) {
    // r0 = b - A x0, computed against the solver's own copy of the guess so
    // callers may pass a span into a buffer they are about to recycle.
    wk.w.assign(n, T{0});
    spmv(a, std::span<const T>(res.x), std::span<T>(wk.w));
    for (std::size_t i = 0; i < n; ++i) wk.r[i] -= wk.w[i];
  }
  wk.z.assign(n, T{0});
  wk.p.assign(n, T{0});
  wk.w.assign(n, T{0});
  {
    const TraceSampleScope sample(trace_iters);
    Span span("precond", "solve");
    m.apply(std::span<const T>(wk.r), std::span<T>(wk.z));
  }
  wk.p.assign(wk.z.begin(), wk.z.end());

  T rz = dot(std::span<const T>(wk.r), std::span<const T>(wk.z));
  const double target =
      opt.relative ? opt.tolerance * b_norm : opt.tolerance;  // b_norm > 0

  double r_norm = static_cast<double>(norm2(std::span<const T>(wk.r)));
  if (opt.record_history) res.residual_history.push_back(r_norm);

  std::int32_t k = 0;
  for (; k < opt.max_iterations; ++k) {
    if (r_norm < target) {
      res.status = SolveStatus::kConverged;
      break;
    }
    // Allocation probe: after the warmup iteration (k = 0), a serial-path
    // iteration must not touch the heap — the zero-allocation contract of
    // ROADMAP Open item 4. Tracing and history recording allocate by
    // design, so the steady-state claim only holds with both off; the
    // auditor attributes those allocations to this phase either way.
    const analysis::AllocAuditScope alloc_scope("pcg.iteration",
                                                /*steady_state=*/k > 0);
    // Per-iteration phase spans, sampled every trace_every-th iteration;
    // unsampled iterations suppress these and any nested spans (the SpTRSV
    // sweeps inside m.apply) on this thread.
    const TraceSampleScope sample(trace_iters &&
                                  k % opt.trace_every == 0);
    Span iter_span("iteration", "solve");
    iter_span.arg("k", k);
    T pw;
    {
      Span span("spmv", "solve");
      spmv(a, std::span<const T>(wk.p), std::span<T>(wk.w));
    }
    {
      Span span("reduce", "solve");
      pw = dot(std::span<const T>(wk.p), std::span<const T>(wk.w));
    }
    if (!(pw > T{0})) {  // SPD curvature must be positive; catches NaN too
      res.status = SolveStatus::kBreakdown;
      break;
    }
    const T alpha = rz / pw;
    {
      Span span("axpy", "solve");
      axpy(alpha, std::span<const T>(wk.p), std::span<T>(res.x));
      axpy(-alpha, std::span<const T>(wk.w), std::span<T>(wk.r));
    }
    {
      Span span("precond", "solve");
      m.apply(std::span<const T>(wk.r), std::span<T>(wk.z));
    }
    T rz_next;
    {
      Span span("reduce", "solve");
      rz_next = dot(std::span<const T>(wk.r), std::span<const T>(wk.z));
    }
    if (rz == T{0} || rz_next != rz_next) {  // NaN guard
      res.status = SolveStatus::kBreakdown;
      ++k;
      break;
    }
    const T beta = rz_next / rz;
    rz = rz_next;
    {
      Span span("axpy", "solve");
      xpby(std::span<const T>(wk.z), beta, std::span<T>(wk.p));
    }
    {
      Span span("reduce", "solve");
      r_norm = static_cast<double>(norm2(std::span<const T>(wk.r)));
    }
    if (opt.record_history) res.residual_history.push_back(r_norm);
  }
  if (res.status == SolveStatus::kMaxIterations && r_norm < target)
    res.status = SolveStatus::kConverged;

  res.iterations = k;
  pcg_span.arg("iterations", k);
  pcg_span.arg("converged", res.converged());
  // Recompute the true residual (the recurrence can drift).
  wk.ax.assign(n, T{0});
  spmv(a, std::span<const T>(res.x), std::span<T>(wk.ax));
  double true_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(b[i]) - static_cast<double>(wk.ax[i]);
    true_norm += d * d;
  }
  res.final_residual_norm = std::sqrt(true_norm);
  return res;
}

/// Unpreconditioned CG.
template <class T>
SolveResult<T> cg(const Csr<T>& a, std::span<const T> b,
                  const PcgOptions& opt = {}) {
  IdentityPreconditioner<T> identity(a.rows);
  return pcg(a, b, identity, opt);
}

/// Vector-argument conveniences (span<const T> cannot be deduced from
/// std::vector<T> in template argument deduction).
template <class T>
SolveResult<T> pcg(const Csr<T>& a, const std::vector<T>& b,
                   const Preconditioner<T>& m, const PcgOptions& opt = {}) {
  return pcg(a, std::span<const T>(b), m, opt);
}

template <class T>
SolveResult<T> cg(const Csr<T>& a, const std::vector<T>& b,
                  const PcgOptions& opt = {}) {
  return cg(a, std::span<const T>(b), opt);
}

}  // namespace spcg
