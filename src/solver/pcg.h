// Conjugate gradient solvers.
//
// pcg() is the left-preconditioned CG of the paper's Algorithm 1, with the
// same control flow: residual check at the top of the loop, preconditioner
// application once per iteration, and a maximum-iteration cap. cg() is the
// unpreconditioned special case.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/alloc_audit.h"
#include "precond/preconditioner.h"
#include "sparse/csr.h"
#include "sparse/norms.h"
#include "sparse/ops.h"
#include "support/trace.h"

namespace spcg {

/// Solver configuration (paper defaults: tol 1e-12, 1000 iterations).
struct PcgOptions {
  double tolerance = 1e-12;   // convergence when ||r|| < tolerance
  bool relative = false;      // if set, compare against tolerance * ||b||
  std::int32_t max_iterations = 1000;
  bool record_history = false;  // keep ||r|| per iteration
  /// Per-iteration trace sampling: when the global trace recorder is
  /// enabled and trace_every > 0, every trace_every-th iteration emits
  /// "iteration"/"spmv"/"precond"/"reduce" spans (and the SpTRSV sweep
  /// spans nested under the preconditioner apply). 0 = per-iteration spans
  /// off; the enclosing "pcg" span is always emitted while tracing. Does
  /// not affect the setup cache key (solve-phase option).
  std::int32_t trace_every = 0;
};

enum class SolveStatus {
  kConverged,
  kMaxIterations,
  kBreakdown,  // division by (numerically) zero curvature or rho
};

/// Result of a CG/PCG run.
template <class T>
struct SolveResult {
  std::vector<T> x;
  SolveStatus status = SolveStatus::kMaxIterations;
  std::int32_t iterations = 0;        // iterations actually performed
  double final_residual_norm = 0.0;   // ||b - A x||_2 at exit (recomputed)
  std::vector<double> residual_history;  // when record_history

  [[nodiscard]] bool converged() const {
    return status == SolveStatus::kConverged;
  }
};

/// Left-preconditioned conjugate gradient (Algorithm 1 of the paper).
template <class T>
SolveResult<T> pcg(const Csr<T>& a, std::span<const T> b,
                   const Preconditioner<T>& m, const PcgOptions& opt = {}) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(static_cast<index_t>(b.size()) == a.rows);
  SPCG_CHECK(m.rows() == a.rows);
  const auto n = static_cast<std::size_t>(a.rows);

  Span pcg_span("pcg", "solve");
  pcg_span.arg("rows", static_cast<std::int64_t>(a.rows));
  pcg_span.arg("nnz", static_cast<std::int64_t>(a.nnz()));

  SolveResult<T> res;
  res.x.assign(n, T{0});  // x0 = 0

  const double b_norm = static_cast<double>(norm2(b));
  if (b_norm == 0.0) {
    // b = 0 has the exact solution x = 0. Under relative tolerance the
    // threshold tolerance*||b|| would be 0 and ||r|| < 0 can never hold, so
    // the solver could only exit at max_iterations; answer directly instead.
    res.status = SolveStatus::kConverged;
    if (opt.record_history) res.residual_history.push_back(0.0);
    pcg_span.arg("iterations", std::int64_t{0});
    return res;
  }

  const bool trace_iters = opt.trace_every > 0 && global_trace().enabled();
  std::vector<T> r(b.begin(), b.end());  // r0 = b - A*0 = b
  std::vector<T> z(n), p(n), w(n);
  {
    const TraceSampleScope sample(trace_iters);
    Span span("precond", "solve");
    m.apply(r, std::span<T>(z));
  }
  p = z;

  T rz = dot(std::span<const T>(r), std::span<const T>(z));
  const double target =
      opt.relative ? opt.tolerance * b_norm : opt.tolerance;  // b_norm > 0

  double r_norm = static_cast<double>(norm2(std::span<const T>(r)));
  if (opt.record_history) res.residual_history.push_back(r_norm);

  std::int32_t k = 0;
  for (; k < opt.max_iterations; ++k) {
    if (r_norm < target) {
      res.status = SolveStatus::kConverged;
      break;
    }
    // Allocation probe: after the warmup iteration (k = 0), a serial-path
    // iteration must not touch the heap — the zero-allocation contract of
    // ROADMAP Open item 4. Tracing and history recording allocate by
    // design, so the steady-state claim only holds with both off; the
    // auditor attributes those allocations to this phase either way.
    const analysis::AllocAuditScope alloc_scope("pcg.iteration",
                                                /*steady_state=*/k > 0);
    // Per-iteration phase spans, sampled every trace_every-th iteration;
    // unsampled iterations suppress these and any nested spans (the SpTRSV
    // sweeps inside m.apply) on this thread.
    const TraceSampleScope sample(trace_iters &&
                                  k % opt.trace_every == 0);
    Span iter_span("iteration", "solve");
    iter_span.arg("k", k);
    T pw;
    {
      Span span("spmv", "solve");
      spmv(a, std::span<const T>(p), std::span<T>(w));
    }
    {
      Span span("reduce", "solve");
      pw = dot(std::span<const T>(p), std::span<const T>(w));
    }
    if (!(pw > T{0})) {  // SPD curvature must be positive; catches NaN too
      res.status = SolveStatus::kBreakdown;
      break;
    }
    const T alpha = rz / pw;
    {
      Span span("axpy", "solve");
      axpy(alpha, std::span<const T>(p), std::span<T>(res.x));
      axpy(-alpha, std::span<const T>(w), std::span<T>(r));
    }
    {
      Span span("precond", "solve");
      m.apply(r, std::span<T>(z));
    }
    T rz_next;
    {
      Span span("reduce", "solve");
      rz_next = dot(std::span<const T>(r), std::span<const T>(z));
    }
    if (rz == T{0} || rz_next != rz_next) {  // NaN guard
      res.status = SolveStatus::kBreakdown;
      ++k;
      break;
    }
    const T beta = rz_next / rz;
    rz = rz_next;
    {
      Span span("axpy", "solve");
      xpby(std::span<const T>(z), beta, std::span<T>(p));
    }
    {
      Span span("reduce", "solve");
      r_norm = static_cast<double>(norm2(std::span<const T>(r)));
    }
    if (opt.record_history) res.residual_history.push_back(r_norm);
  }
  if (res.status == SolveStatus::kMaxIterations && r_norm < target)
    res.status = SolveStatus::kConverged;

  res.iterations = k;
  pcg_span.arg("iterations", k);
  pcg_span.arg("converged", res.converged());
  // Recompute the true residual (the recurrence can drift).
  std::vector<T> ax(n);
  spmv(a, std::span<const T>(res.x), std::span<T>(ax));
  double true_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(b[i]) - static_cast<double>(ax[i]);
    true_norm += d * d;
  }
  res.final_residual_norm = std::sqrt(true_norm);
  return res;
}

/// Unpreconditioned CG.
template <class T>
SolveResult<T> cg(const Csr<T>& a, std::span<const T> b,
                  const PcgOptions& opt = {}) {
  IdentityPreconditioner<T> identity(a.rows);
  return pcg(a, b, identity, opt);
}

/// Vector-argument conveniences (span<const T> cannot be deduced from
/// std::vector<T> in template argument deduction).
template <class T>
SolveResult<T> pcg(const Csr<T>& a, const std::vector<T>& b,
                   const Preconditioner<T>& m, const PcgOptions& opt = {}) {
  return pcg(a, std::span<const T>(b), m, opt);
}

template <class T>
SolveResult<T> cg(const Csr<T>& a, const std::vector<T>& b,
                  const PcgOptions& opt = {}) {
  return cg(a, std::span<const T>(b), opt);
}

}  // namespace spcg
