// Matrix and vector norms plus small BLAS-1 helpers used by the solvers.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "sparse/csr.h"

namespace spcg {

/// Infinity norm of a matrix: max row sum of absolute values.
template <class T>
T norm_inf(const Csr<T>& a) {
  T best{0};
  for (index_t i = 0; i < a.rows; ++i) {
    T row{0};
    for (const T& v : a.row_vals(i)) row += std::abs(v);
    best = std::max(best, row);
  }
  return best;
}

/// One norm of a matrix: max column sum of absolute values.
template <class T>
T norm_one(const Csr<T>& a) {
  std::vector<T> col_sums(static_cast<std::size_t>(a.cols), T{0});
  for (std::size_t p = 0; p < a.values.size(); ++p)
    col_sums[static_cast<std::size_t>(a.colind[p])] += std::abs(a.values[p]);
  T best{0};
  for (const T& s : col_sums) best = std::max(best, s);
  return best;
}

/// Frobenius norm.
template <class T>
T norm_fro(const Csr<T>& a) {
  T acc{0};
  for (const T& v : a.values) acc += v * v;
  return std::sqrt(acc);
}

/// Euclidean vector norm.
template <class T>
T norm2(std::span<const T> x) {
  T acc{0};
  for (const T& v : x) acc += v * v;
  return std::sqrt(acc);
}

template <class T>
T norm2(const std::vector<T>& x) {
  return norm2(std::span<const T>(x));
}

/// Dot product.
template <class T>
T dot(std::span<const T> x, std::span<const T> y) {
  SPCG_CHECK(x.size() == y.size());
  T acc{0};
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

template <class T>
T dot(const std::vector<T>& x, const std::vector<T>& y) {
  return dot(std::span<const T>(x), std::span<const T>(y));
}

/// y += alpha * x.
template <class T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  SPCG_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x = alpha * x.
template <class T>
void scale(T alpha, std::span<T> x) {
  for (T& v : x) v *= alpha;
}

/// p = z + beta * p.
template <class T>
void xpby(std::span<const T> z, T beta, std::span<T> p) {
  SPCG_CHECK(z.size() == p.size());
  for (std::size_t i = 0; i < z.size(); ++i) p[i] = z[i] + beta * p[i];
}

}  // namespace spcg
