// Matrix Market (.mtx) reader/writer for coordinate real matrices.
//
// Supports `general` and `symmetric` coordinate files; symmetric files are
// expanded to full storage on read. Writing always emits `general` format.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.h"

namespace spcg {

/// Read a Matrix Market coordinate file into CSR (double precision).
Csr<double> read_matrix_market(const std::string& path);

/// Stream-based variant, useful for tests.
Csr<double> read_matrix_market(std::istream& in);

/// Write a CSR matrix to a Matrix Market coordinate file (general format).
void write_matrix_market(const Csr<double>& a, const std::string& path);
void write_matrix_market(const Csr<double>& a, std::ostream& out);

}  // namespace spcg
