// Coordinate (COO) sparse format: the assembly-friendly sibling of CSR.
// Used as the interchange format for IO and incremental construction;
// convert to CSR (which every algorithm in src/ operates on) when done.
#pragma once

#include <vector>

#include "sparse/csr.h"

namespace spcg {

/// COO matrix. Entries may be unsorted and may contain duplicates (which
/// sum on conversion to CSR) — the natural state during FEM-style assembly.
template <class T>
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<Triplet<T>> entries;

  Coo() = default;
  Coo(index_t r, index_t c) : rows(r), cols(c) {}

  [[nodiscard]] std::size_t nnz_stored() const { return entries.size(); }

  /// Append one entry (bounds-checked).
  void add(index_t i, index_t j, T v) {
    SPCG_CHECK_MSG(i >= 0 && i < rows && j >= 0 && j < cols,
                   "COO entry (" << i << "," << j << ") out of range");
    entries.push_back({i, j, v});
  }

  /// Append a symmetric pair (i,j) and (j,i); a diagonal entry once.
  void add_symmetric(index_t i, index_t j, T v) {
    add(i, j, v);
    if (i != j) add(j, i, v);
  }
};

/// COO -> CSR (duplicates summed, columns sorted).
template <class T>
Csr<T> coo_to_csr(const Coo<T>& coo) {
  return csr_from_triplets(coo.rows, coo.cols, coo.entries);
}

/// CSR -> COO (row-major entry order, no duplicates).
template <class T>
Coo<T> csr_to_coo(const Csr<T>& a) {
  Coo<T> coo(a.rows, a.cols);
  coo.entries.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      coo.entries.push_back({i, a.colind[static_cast<std::size_t>(p)],
                             a.values[static_cast<std::size_t>(p)]});
    }
  }
  return coo;
}

}  // namespace spcg
