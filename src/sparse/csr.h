// Compressed Sparse Row (CSR) matrix — the central data structure of the
// library. Column indices within a row are kept sorted and unique; all
// algorithms in src/ rely on that invariant (validate() checks it).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "support/error.h"

namespace spcg {

using index_t = std::int32_t;

/// Largest value representable by index_t; sizes/products must stay below it.
inline constexpr std::size_t kIndexMax =
    static_cast<std::size_t>(std::numeric_limits<index_t>::max());

/// Narrow a size to index_t, checking it fits (nnz counters, offsets).
inline index_t checked_index_cast(std::size_t v) {
  SPCG_CHECK_MSG(v <= kIndexMax, "size " << v << " overflows index_t");
  return static_cast<index_t>(v);
}

/// Product of non-negative dimensions (e.g. nx*ny*nz of a grid generator),
/// computed in std::size_t and checked to fit index_t — int32 arithmetic on
/// the factors would silently wrap for grids past ~46k x 46k.
inline index_t checked_dims(index_t a, index_t b, index_t c = 1) {
  SPCG_CHECK_MSG(a >= 0 && b >= 0 && c >= 0,
                 "negative dimension " << a << "x" << b << "x" << c);
  const std::size_t prod = static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(b) *
                           static_cast<std::size_t>(c);
  SPCG_CHECK_MSG(b == 0 || c == 0 ||
                     prod / (static_cast<std::size_t>(b) *
                             static_cast<std::size_t>(c)) ==
                         static_cast<std::size_t>(a),
                 "dimension product " << a << "x" << b << "x" << c
                                      << " overflows std::size_t");
  return checked_index_cast(prod);
}

/// CSR sparse matrix with value type T.
template <class T>
struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> rowptr;  // size rows + 1
  std::vector<index_t> colind;  // size nnz, sorted & unique within each row
  std::vector<T> values;        // size nnz

  Csr() = default;
  Csr(index_t r, index_t c) : rows(r), cols(c), rowptr(static_cast<std::size_t>(r) + 1, 0) {}

  [[nodiscard]] index_t nnz() const {
    return rowptr.empty() ? 0 : rowptr.back();
  }

  /// Span over the column indices of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
    return {colind.data() + rowptr[static_cast<std::size_t>(i)],
            colind.data() + rowptr[static_cast<std::size_t>(i) + 1]};
  }

  /// Span over the values of row i.
  [[nodiscard]] std::span<const T> row_vals(index_t i) const {
    return {values.data() + rowptr[static_cast<std::size_t>(i)],
            values.data() + rowptr[static_cast<std::size_t>(i) + 1]};
  }

  [[nodiscard]] std::span<T> row_vals_mut(index_t i) {
    return {values.data() + rowptr[static_cast<std::size_t>(i)],
            values.data() + rowptr[static_cast<std::size_t>(i) + 1]};
  }

  /// Value at (i, j), or 0 if the entry is not stored. Binary search.
  /// Offset arithmetic runs in std::size_t: index_t sums would narrow first.
  [[nodiscard]] T at(index_t i, index_t j) const {
    const auto cols_i = row_cols(i);
    const auto it = std::lower_bound(cols_i.begin(), cols_i.end(), j);
    if (it == cols_i.end() || *it != j) return T{0};
    return values[static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]) +
                  static_cast<std::size_t>(it - cols_i.begin())];
  }

  /// Position of the stored entry (i, j) in colind/values, or -1.
  [[nodiscard]] index_t find(index_t i, index_t j) const {
    const auto cols_i = row_cols(i);
    const auto it = std::lower_bound(cols_i.begin(), cols_i.end(), j);
    if (it == cols_i.end() || *it != j) return -1;
    return checked_index_cast(
        static_cast<std::size_t>(rowptr[static_cast<std::size_t>(i)]) +
        static_cast<std::size_t>(it - cols_i.begin()));
  }

  /// Throws spcg::Error if any structural invariant is violated.
  void validate() const {
    SPCG_CHECK(rows >= 0 && cols >= 0);
    SPCG_CHECK_MSG(rowptr.size() == static_cast<std::size_t>(rows) + 1,
                   "rowptr size " << rowptr.size() << " vs rows " << rows);
    SPCG_CHECK(rowptr.front() == 0);
    SPCG_CHECK(colind.size() == values.size());
    SPCG_CHECK(static_cast<std::size_t>(rowptr.back()) == colind.size());
    for (index_t i = 0; i < rows; ++i) {
      SPCG_CHECK_MSG(rowptr[static_cast<std::size_t>(i)] <=
                         rowptr[static_cast<std::size_t>(i) + 1],
                     "rowptr not monotone at row " << i);
      index_t prev = -1;
      for (index_t p = rowptr[static_cast<std::size_t>(i)];
           p < rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t j = colind[static_cast<std::size_t>(p)];
        SPCG_CHECK_MSG(j >= 0 && j < cols, "col " << j << " out of range");
        SPCG_CHECK_MSG(j > prev, "cols not sorted/unique in row " << i);
        prev = j;
      }
    }
  }
};

/// A single (row, col, value) triplet used by builders.
template <class T>
struct Triplet {
  index_t row;
  index_t col;
  T value;
};

/// Build a CSR matrix from triplets. Duplicate (row, col) entries are summed.
template <class T>
Csr<T> csr_from_triplets(index_t rows, index_t cols,
                         std::vector<Triplet<T>> triplets) {
  SPCG_CHECK_MSG(triplets.size() <= kIndexMax,
                 "nnz " << triplets.size() << " overflows index_t");
  for (const auto& t : triplets) {
    SPCG_CHECK_MSG(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                   "triplet (" << t.row << "," << t.col << ") out of range");
  }
  // Stable sort: duplicates are summed in insertion order, so a generator
  // that pushes symmetric pairs in lockstep gets bitwise-symmetric sums.
  std::stable_sort(triplets.begin(), triplets.end(),
                   [](const Triplet<T>& a, const Triplet<T>& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  Csr<T> m(rows, cols);
  m.colind.reserve(triplets.size());
  m.values.reserve(triplets.size());
  std::size_t k = 0;
  for (index_t i = 0; i < rows; ++i) {
    while (k < triplets.size() && triplets[k].row == i) {
      const index_t j = triplets[k].col;
      T v = triplets[k].value;
      ++k;
      while (k < triplets.size() && triplets[k].row == i &&
             triplets[k].col == j) {
        v += triplets[k].value;
        ++k;
      }
      m.colind.push_back(j);
      m.values.push_back(v);
    }
    m.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(m.colind.size());
  }
  return m;
}

/// Convert element type (e.g. double -> float).
template <class To, class From>
Csr<To> csr_cast(const Csr<From>& a) {
  Csr<To> out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.rowptr = a.rowptr;
  out.colind = a.colind;
  out.values.reserve(a.values.size());
  for (const From& v : a.values) out.values.push_back(static_cast<To>(v));
  return out;
}

}  // namespace spcg
