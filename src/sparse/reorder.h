// Symmetric reorderings. Wavefront counts — and therefore everything SPCG
// exploits — depend on the matrix ordering: natural band orderings produce
// deep schedules, BFS-style orderings change the profile, and random
// orderings destroy locality. This module provides the standard tools to
// study that axis (bench/ablation_ordering).
#pragma once

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

#include "sparse/csr.h"
#include "support/rng.h"

namespace spcg {

/// A permutation: new_index = perm[old_index]. perm must be a bijection.
using Permutation = std::vector<index_t>;

/// Validate that `perm` is a permutation of 0..n-1.
inline void validate_permutation(const Permutation& perm) {
  std::vector<char> seen(perm.size(), 0);
  for (const index_t p : perm) {
    SPCG_CHECK_MSG(p >= 0 && static_cast<std::size_t>(p) < perm.size(),
                   "permutation value out of range: " << p);
    SPCG_CHECK_MSG(!seen[static_cast<std::size_t>(p)],
                   "duplicate permutation value: " << p);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

/// Symmetric permutation B = P A P^T, i.e. B(perm[i], perm[j]) = A(i, j).
template <class T>
Csr<T> permute_symmetric(const Csr<T>& a, const Permutation& perm) {
  SPCG_CHECK(a.rows == a.cols);
  SPCG_CHECK(static_cast<index_t>(perm.size()) == a.rows);
  std::vector<Triplet<T>> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      ts.push_back({perm[static_cast<std::size_t>(i)],
                    perm[static_cast<std::size_t>(
                        a.colind[static_cast<std::size_t>(p)])],
                    a.values[static_cast<std::size_t>(p)]});
    }
  }
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

/// Inverse permutation.
inline Permutation invert_permutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return inv;
}

/// Apply a permutation to a vector: out[perm[i]] = x[i].
template <class T>
std::vector<T> permute_vector(const std::vector<T>& x,
                              const Permutation& perm) {
  SPCG_CHECK(x.size() == perm.size());
  std::vector<T> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[static_cast<std::size_t>(perm[i])] = x[i];
  return out;
}

/// Connected components of the pattern of symmetric A. Returns one label per
/// vertex; labels are dense (0..count-1) and numbered in order of first
/// appearance, so vertex 0 always has label 0 and the labeling is
/// deterministic. The optional `count` out-param receives the number of
/// components. Used by the BFS partitioner (dist/partition.h) to seed one
/// growth front per component.
template <class T>
std::vector<index_t> connected_components(const Csr<T>& a,
                                          index_t* count = nullptr) {
  SPCG_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  std::vector<index_t> label(static_cast<std::size_t>(n), -1);
  index_t components = 0;
  std::queue<index_t> q;
  for (index_t seed = 0; seed < n; ++seed) {
    if (label[static_cast<std::size_t>(seed)] >= 0) continue;
    const index_t c = components++;
    label[static_cast<std::size_t>(seed)] = c;
    q.push(seed);
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      for (const index_t w : a.row_cols(v)) {
        if (label[static_cast<std::size_t>(w)] < 0) {
          label[static_cast<std::size_t>(w)] = c;
          q.push(w);
        }
      }
    }
  }
  if (count) *count = components;
  return label;
}

/// Reverse Cuthill–McKee ordering of the pattern of symmetric A: BFS from a
/// pseudo-peripheral vertex, neighbors visited in increasing-degree order,
/// final order reversed. Reduces bandwidth/profile; the classic choice
/// before banded or incomplete factorization.
///
/// Disconnected graphs are handled per component: the seed loop below visits
/// every component in ascending seed order, orders it with its own
/// pseudo-peripheral BFS, and appends it to the visit order. Each component
/// therefore occupies one contiguous block of the final (reversed)
/// permutation — a property the partitioner's RCM pre-pass relies on, and
/// that reorder_test locks in.
template <class T>
Permutation reverse_cuthill_mckee(const Csr<T>& a) {
  SPCG_CHECK(a.rows == a.cols);
  const index_t n = a.rows;
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    degree[static_cast<std::size_t>(i)] =
        a.rowptr[static_cast<std::size_t>(i) + 1] -
        a.rowptr[static_cast<std::size_t>(i)];

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);

  // BFS level structure from `start`; returns the last-discovered vertex
  // (an approximation of a peripheral vertex after a couple of sweeps).
  auto bfs_last = [&](index_t start) {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::queue<index_t> q;
    q.push(start);
    seen[static_cast<std::size_t>(start)] = 1;
    index_t last = start;
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      last = v;
      for (const index_t w : a.row_cols(v)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          q.push(w);
        }
      }
    }
    return last;
  };

  std::vector<index_t> nbrs;
  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Pseudo-peripheral start: two BFS sweeps from the component seed.
    index_t start = bfs_last(seed);
    start = bfs_last(start);
    if (visited[static_cast<std::size_t>(start)]) start = seed;

    std::queue<index_t> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = 1;
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (const index_t w : a.row_cols(v)) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          nbrs.push_back(w);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
        return degree[static_cast<std::size_t>(x)] <
               degree[static_cast<std::size_t>(y)];
      });
      for (const index_t w : nbrs) q.push(w);
    }
  }
  SPCG_CHECK(static_cast<index_t>(order.size()) == n);

  // Reverse (the "R" in RCM) and convert visit order to a permutation.
  Permutation perm(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(n - 1 - k)])] = k;
  }
  return perm;
}

/// Uniformly random symmetric permutation (destroys locality; the worst
/// case for banded factorizations, often the best case for wavefronts).
inline Permutation random_permutation(index_t n, std::uint64_t seed) {
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  rng.shuffle(perm);
  return perm;
}

/// Half-bandwidth of A: max |i - j| over stored entries.
template <class T>
index_t bandwidth(const Csr<T>& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    for (const index_t j : a.row_cols(i))
      bw = std::max(bw, std::abs(i - j));
  }
  return bw;
}

}  // namespace spcg
