// Structural and numerical operations on CSR matrices: SpMV, transpose,
// triangular extraction, addition/subtraction, symmetry checks, diagonal
// access. All templates, header-only.
#pragma once

#include <cmath>
#include <cstdlib>
#include <span>
#include <vector>

#include "sparse/csr.h"

namespace spcg {

/// y = A * x.
template <class T>
void spmv(const Csr<T>& a, std::span<const T> x, std::span<T> y) {
  SPCG_CHECK(static_cast<index_t>(x.size()) == a.cols);
  SPCG_CHECK(static_cast<index_t>(y.size()) == a.rows);
  for (index_t i = 0; i < a.rows; ++i) {
    T acc{0};
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      acc += a.values[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(a.colind[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

/// Convenience overload returning a fresh vector.
template <class T>
std::vector<T> spmv(const Csr<T>& a, const std::vector<T>& x) {
  std::vector<T> y(static_cast<std::size_t>(a.rows));
  spmv(a, std::span<const T>(x), std::span<T>(y));
  return y;
}

/// Multi-RHS SpMV: ys[c] = A * xs[c] for every column c, in one pass over A.
/// Each column's accumulation visits entries in the same order as spmv(), so
/// per-column results are bitwise identical to the single-RHS kernel.
template <class T>
void spmv_multi(const Csr<T>& a, std::span<const T* const> xs,
                std::span<T* const> ys) {
  SPCG_CHECK(xs.size() == ys.size());
  for (index_t i = 0; i < a.rows; ++i) {
    for (std::size_t c = 0; c < xs.size(); ++c) {
      T acc{0};
      for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
           p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
        acc += a.values[static_cast<std::size_t>(p)] *
               xs[c][static_cast<std::size_t>(
                   a.colind[static_cast<std::size_t>(p)])];
      }
      ys[c][static_cast<std::size_t>(i)] = acc;
    }
  }
}

/// Transpose.
template <class T>
Csr<T> transpose(const Csr<T>& a) {
  Csr<T> t(a.cols, a.rows);
  t.colind.assign(static_cast<std::size_t>(a.nnz()), 0);
  t.values.assign(static_cast<std::size_t>(a.nnz()), T{0});
  // Count entries per column.
  for (index_t p = 0; p < a.nnz(); ++p)
    ++t.rowptr[static_cast<std::size_t>(a.colind[static_cast<std::size_t>(p)]) + 1];
  for (index_t j = 0; j < a.cols; ++j)
    t.rowptr[static_cast<std::size_t>(j) + 1] +=
        t.rowptr[static_cast<std::size_t>(j)];
  std::vector<index_t> next(t.rowptr.begin(), t.rowptr.end() - 1);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      const index_t q = next[static_cast<std::size_t>(j)]++;
      t.colind[static_cast<std::size_t>(q)] = i;
      t.values[static_cast<std::size_t>(q)] =
          a.values[static_cast<std::size_t>(p)];
    }
  }
  return t;
}

enum class Triangle { kLower, kUpper };
enum class DiagonalPolicy { kInclude, kExclude };

/// Extract the lower or upper triangle (optionally with the diagonal).
template <class T>
Csr<T> extract_triangle(const Csr<T>& a, Triangle tri, DiagonalPolicy diag) {
  Csr<T> out(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      const bool keep =
          (j == i) ? (diag == DiagonalPolicy::kInclude)
                   : (tri == Triangle::kLower ? j < i : j > i);
      if (keep) {
        out.colind.push_back(j);
        out.values.push_back(a.values[static_cast<std::size_t>(p)]);
      }
    }
    out.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(out.colind.size());
  }
  return out;
}

/// C = A + alpha * B (patterns merged).
template <class T>
Csr<T> add(const Csr<T>& a, const Csr<T>& b, T alpha = T{1}) {
  SPCG_CHECK(a.rows == b.rows && a.cols == b.cols);
  Csr<T> c(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    index_t pa = a.rowptr[static_cast<std::size_t>(i)];
    index_t pb = b.rowptr[static_cast<std::size_t>(i)];
    const index_t ea = a.rowptr[static_cast<std::size_t>(i) + 1];
    const index_t eb = b.rowptr[static_cast<std::size_t>(i) + 1];
    while (pa < ea || pb < eb) {
      index_t ja = pa < ea ? a.colind[static_cast<std::size_t>(pa)] : a.cols;
      index_t jb = pb < eb ? b.colind[static_cast<std::size_t>(pb)] : b.cols;
      if (ja == jb) {
        c.colind.push_back(ja);
        c.values.push_back(a.values[static_cast<std::size_t>(pa)] +
                           alpha * b.values[static_cast<std::size_t>(pb)]);
        ++pa;
        ++pb;
      } else if (ja < jb) {
        c.colind.push_back(ja);
        c.values.push_back(a.values[static_cast<std::size_t>(pa)]);
        ++pa;
      } else {
        c.colind.push_back(jb);
        c.values.push_back(alpha * b.values[static_cast<std::size_t>(pb)]);
        ++pb;
      }
    }
    c.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(c.colind.size());
  }
  return c;
}

/// Drop stored entries with |value| <= tol (structural zeros removed).
template <class T>
Csr<T> drop_small(const Csr<T>& a, T tol) {
  Csr<T> out(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      if (std::abs(a.values[static_cast<std::size_t>(p)]) > tol) {
        out.colind.push_back(a.colind[static_cast<std::size_t>(p)]);
        out.values.push_back(a.values[static_cast<std::size_t>(p)]);
      }
    }
    out.rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(out.colind.size());
  }
  return out;
}

/// Diagonal entries as a dense vector (0 where not stored).
template <class T>
std::vector<T> diagonal(const Csr<T>& a) {
  std::vector<T> d(static_cast<std::size_t>(std::min(a.rows, a.cols)), T{0});
  for (index_t i = 0; i < static_cast<index_t>(d.size()); ++i)
    d[static_cast<std::size_t>(i)] = a.at(i, i);
  return d;
}

/// True when A is numerically symmetric up to `tol` (and structurally square).
template <class T>
bool is_symmetric(const Csr<T>& a, T tol = T{0}) {
  if (a.rows != a.cols) return false;
  const Csr<T> t = transpose(a);
  if (t.rowptr != a.rowptr || t.colind != a.colind) return false;
  for (std::size_t p = 0; p < a.values.size(); ++p) {
    if (std::abs(a.values[p] - t.values[p]) > tol) return false;
  }
  return true;
}

/// True when every diagonal entry is stored and positive.
template <class T>
bool has_positive_diagonal(const Csr<T>& a) {
  for (index_t i = 0; i < std::min(a.rows, a.cols); ++i) {
    const index_t p = a.find(i, i);
    if (p < 0 || !(a.values[static_cast<std::size_t>(p)] > T{0})) return false;
  }
  return true;
}

/// True when A is weakly row diagonally dominant (sufficient for SPD when
/// symmetric with positive diagonal and at least one strict row).
template <class T>
bool is_diagonally_dominant(const Csr<T>& a) {
  for (index_t i = 0; i < a.rows; ++i) {
    T diag{0}, off{0};
    for (index_t p = a.rowptr[static_cast<std::size_t>(i)];
         p < a.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = a.colind[static_cast<std::size_t>(p)];
      if (j == i)
        diag = std::abs(a.values[static_cast<std::size_t>(p)]);
      else
        off += std::abs(a.values[static_cast<std::size_t>(p)]);
    }
    if (diag < off) return false;
  }
  return true;
}

}  // namespace spcg
