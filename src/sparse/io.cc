#include "sparse/io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace spcg {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Csr<double> read_matrix_market(std::istream& in) {
  std::string line;
  SPCG_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  SPCG_CHECK_MSG(tag == "%%MatrixMarket", "missing MatrixMarket banner");
  SPCG_CHECK_MSG(lower(object) == "matrix", "unsupported object: " << object);
  SPCG_CHECK_MSG(lower(format) == "coordinate",
                 "only coordinate format is supported, got " << format);
  const std::string f = lower(field);
  SPCG_CHECK_MSG(f == "real" || f == "integer" || f == "pattern",
                 "unsupported field: " << field);
  const std::string sym = lower(symmetry);
  SPCG_CHECK_MSG(sym == "general" || sym == "symmetric",
                 "unsupported symmetry: " << symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream header(line);
  long rows = 0, cols = 0, entries = 0;
  header >> rows >> cols >> entries;
  SPCG_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                 "bad size line: " << line);

  std::vector<Triplet<double>> triplets;
  triplets.reserve(static_cast<std::size_t>(entries) * (sym == "symmetric" ? 2 : 1));
  for (long k = 0; k < entries; ++k) {
    SPCG_CHECK_MSG(std::getline(in, line), "truncated file at entry " << k);
    std::istringstream es(line);
    long i = 0, j = 0;
    double v = 1.0;
    es >> i >> j;
    if (f != "pattern") {
      es >> v;
      if (es.fail()) {
        // num_get rejects "nan"/"inf" spellings; parse them explicitly
        // instead of silently storing 0 for a value the file does carry.
        es.clear();
        std::string word;
        es >> word;
        std::size_t pos = 0;
        try {
          v = std::stod(word, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        SPCG_CHECK_MSG(!word.empty() && pos == word.size(),
                       "bad value at entry " << k << ": " << line);
      }
    }
    SPCG_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                   "entry out of range: " << line);
    triplets.push_back({static_cast<index_t>(i - 1),
                        static_cast<index_t>(j - 1), v});
    if (sym == "symmetric" && i != j) {
      triplets.push_back({static_cast<index_t>(j - 1),
                          static_cast<index_t>(i - 1), v});
    }
  }
  return csr_from_triplets(static_cast<index_t>(rows),
                           static_cast<index_t>(cols), std::move(triplets));
}

Csr<double> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  SPCG_CHECK_MSG(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(const Csr<double>& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows << ' ' << a.cols << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.rows; ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t p = 0; p < cols_i.size(); ++p) {
      out << (i + 1) << ' ' << (cols_i[p] + 1) << ' ' << vals_i[p] << '\n';
    }
  }
}

void write_matrix_market(const Csr<double>& a, const std::string& path) {
  std::ofstream out(path);
  SPCG_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(a, out);
}

}  // namespace spcg
